// Package sim is the discrete-event simulator behind the paper's evaluation
// (§8): it replays a synthetic workload (arrivals, build durations, ground
// truth conflicts) against a pluggable scheduling strategy on a bounded
// worker pool, under exactly SubmitQueue's serializability semantics:
//
//   - A build applies an assumption set (conflicting predecessors speculated
//     to commit) plus its subject change on top of the mainline at start.
//   - A change commits only when every potentially-conflicting predecessor
//     is resolved and a finished build exists whose assumptions match what
//     actually happened; otherwise the relevant strategy keeps scheduling.
//   - Build outcomes come from the workload's ground truth: a build fails iff
//     some applied change fails individually, two applied changes really
//     conflict, or an applied change really conflicts with an already
//     committed one.
//
// Time is virtual; a simulated hour costs microseconds, which is what lets
// the harness sweep the paper's full {changes/hour} × {workers} grids.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"mastergreen/internal/metrics"
	"mastergreen/internal/workload"
)

// BuildSpec is one desired build, expressed over workload change indices.
type BuildSpec struct {
	// Subject is the change this build decides.
	Subject int
	// Assumed are conflicting predecessors speculated to commit, in
	// submission order. They are applied before Subject.
	Assumed []int
	// AssumedRejected are conflicting predecessors speculated to be
	// rejected (not applied).
	AssumedRejected []int
	// Priority orders build starts when workers are scarce (higher first).
	Priority float64
	// Batch, when non-empty, turns this into a batch build (Chromium
	// commit-queue style): all listed changes are applied and commit
	// atomically on success. Subject must be the last batch member.
	Batch []int
	// AllowReorder permits this build to decide its subject even while
	// conflicting predecessors are still pending (§10 "change reordering"):
	// the subject may commit ahead of them, and they must then rebuild on
	// top of it. The mainline stays green; only the commit order among
	// conflicting changes deviates from submission order.
	AllowReorder bool
}

// applied returns the changes the build applies, in order.
func (b BuildSpec) applied() []int {
	if len(b.Batch) > 0 {
		return append(append([]int(nil), b.Assumed...), b.Batch...)
	}
	return append(append([]int(nil), b.Assumed...), b.Subject)
}

// RunningBuild is an in-flight build visible to strategies.
type RunningBuild struct {
	Spec        BuildSpec
	BaseCommits int // mainline commit count when started
	Start       time.Duration
	Finish      time.Duration
}

// FinishedBuild is a completed build visible to strategies.
type FinishedBuild struct {
	Spec        BuildSpec
	BaseCommits int
	OK          bool
	FinishedAt  time.Duration
	// Cost is the worker time the build consumed (start to finish).
	Cost time.Duration
	// FailedMember, for a failed batch build whose failure the build system
	// attributed to one batch member (the real path's Result.FailedTarget),
	// is that member's change index; -1 otherwise — the failure was caused
	// by an assumed (non-batch) change, or by a flake, which identifies no
	// target. Batching strategies evict an attributed member instead of
	// blindly halving.
	FailedMember int
	// used marks results that decided a change (commit or reject); the
	// useful/wasted compute split reads it at the end of the run.
	used bool
}

// State is the view a strategy plans from. Strategies must treat it as
// read-only; they see no ground truth (the Oracle strategy carries its own).
type State struct {
	Now         time.Duration
	W           *workload.Workload
	Pending     []int // submission order (== index order)
	Running     []RunningBuild
	Finished    []FinishedBuild // non-aborted completed builds, oldest first
	Committed   []int           // commit order
	Workers     int
	UseAnalyzer bool

	rejected  map[int]bool
	pending   map[int]bool
	committed map[int]bool
}

// IsCommitted reports whether change i has been committed to master.
func (s *State) IsCommitted(i int) bool { return s.committed[i] }

// IsPending reports whether change i is still undecided and submitted.
func (s *State) IsPending(i int) bool { return s.pending[i] }

// IsRejected reports whether change i was rejected.
func (s *State) IsRejected(i int) bool { return s.rejected[i] }

// PotentialConflict reports the conflict-analyzer view of a pair: with the
// analyzer enabled it returns the workload's potential-conflict relation;
// without it (Fig. 13's ablation) every pair conflicts.
func (s *State) PotentialConflict(i, j int) bool {
	if i == j {
		return false
	}
	if !s.UseAnalyzer {
		return true
	}
	return s.W.Changes[i].PotentialConflicts[j]
}

// PendingConflictingPredecessors returns the still-pending changes submitted
// before i that (per the analyzer view) conflict with it, ascending.
func (s *State) PendingConflictingPredecessors(i int) []int {
	var out []int
	if s.UseAnalyzer {
		for j := range s.W.Changes[i].PotentialConflicts {
			if j < i && s.pending[j] {
				out = append(out, j)
			}
		}
		sort.Ints(out)
		return out
	}
	for _, j := range s.Pending {
		if j >= i {
			break
		}
		out = append(out, j)
	}
	return out
}

// HasPendingConflictingPredecessor is the cheap form of the above.
func (s *State) HasPendingConflictingPredecessor(i int) bool {
	if s.UseAnalyzer {
		for j := range s.W.Changes[i].PotentialConflicts {
			if j < i && s.pending[j] {
				return true
			}
		}
		return false
	}
	return len(s.Pending) > 0 && s.Pending[0] < i
}

// Strategy plans the desired build set from the current state.
type Strategy interface {
	Name() string
	// Plan returns the builds the strategy wants running now, in priority
	// order. The engine reconciles: running builds that stay wanted keep
	// running, unwanted ones are aborted, and new ones start while workers
	// are free.
	Plan(st *State) []BuildSpec
}

// Config tunes a simulation run.
type Config struct {
	Workers     int
	UseAnalyzer bool // conflict analyzer on (the paper's default)
	// MaxVirtualTime aborts runaway simulations (default: 10000 h).
	MaxVirtualTime time.Duration
	// PlanEvery throttles strategy re-planning: between build finishes and
	// decisions, plain arrivals trigger at most one re-plan per interval
	// (default 30 s of virtual time). This mirrors the paper's epoch-driven
	// planner (§6: "the planner engine contacts the speculation engine on
	// every epoch").
	PlanEvery time.Duration
	// IncrementalFactor models §6's minimal build steps + artifact caching:
	// once any build of a subject has finished, later builds of the same
	// subject (under different assumptions) reuse cached per-target
	// artifacts and cost this fraction of the full duration. Default 0.4;
	// set 1 to disable.
	IncrementalFactor float64
	// Trace, when non-nil, receives a line per engine decision and
	// reconcile summary (debugging aid).
	Trace io.Writer

	// FlakePerStepRate, when > 0, models an unreliable build fleet
	// (DESIGN.md §4g): each of FlakeSteps steps of an otherwise-passing
	// build independently suffers an injected transient failure with this
	// probability. Draws are pure hashes of (FlakeSeed, build identity,
	// execution number, step, attempt), so runs are bit-reproducible.
	FlakePerStepRate float64
	// FlakeSteps is the number of per-build steps exposed to flakiness
	// (default 5, mirroring change.DefaultBuildSteps).
	FlakeSteps int
	// FlakeSeed seeds the injected fault schedule.
	FlakeSeed int64
	// LegacyNoRetry disables the reliability layer's handling of injected
	// flakiness: no in-place step retries and no verification re-run before
	// a failed decisive build rejects its change. The baseline for the
	// ablation-reliability experiment.
	LegacyNoRetry bool

	// PruneObsolete enables the §4j obsolete-build pruning the planner
	// applies on every resolution: running builds whose subject is already
	// resolved, whose assumptions were falsified, or whose identity a
	// finished valid build already holds are aborted eagerly after each
	// decision instead of running to completion.
	PruneObsolete bool

	// Classes, when non-nil, labels each change (by index) with its
	// scheduling class (int(change.Class)) for per-class result metrics.
	// Labels only — strategy behavior is driven by the strategy's own
	// class/deadline configuration, so an unprioritized baseline can still
	// report per-class turnaround for comparison.
	Classes []int
}

// Result aggregates a run's measurements.
type Result struct {
	Strategy  string
	Workers   int
	Committed int
	Rejected  int
	// TurnaroundMin are per-change turnaround times in minutes (submission →
	// terminal decision), for committed changes and for all changes.
	TurnaroundCommittedMin []float64
	TurnaroundAllMin       []float64
	// Makespan is first-arrival → last-decision.
	Makespan time.Duration
	// ThroughputPerHour is commits divided by makespan hours.
	ThroughputPerHour float64
	BuildsStarted     int
	BuildsAborted     int
	BuildsFinished    int
	// WorkerBusy is cumulative worker-occupied time (including time spent on
	// builds that were later aborted); divided by Workers × Makespan it
	// yields utilization.
	WorkerBusy time.Duration
	// WorkerBusyUseful is the worker time of finished builds whose results
	// decided a change; WorkerBusyWasted is everything else worker time paid
	// for — aborted builds, finished-but-unused speculation, and dropped
	// verification failures. Useful + Wasted = WorkerBusy (§4j fleet-compute
	// accounting).
	WorkerBusyUseful time.Duration
	WorkerBusyWasted time.Duration
	// WorkerMinutesPerCommit is WorkerBusy in minutes divided by Committed —
	// the fleet compute each landed change cost, the lean-CI headline.
	WorkerMinutesPerCommit float64
	// BuildsPruned counts builds aborted by Config.PruneObsolete (a subset
	// of BuildsAborted).
	BuildsPruned int
	// CommittedChanges lists committed change indices in commit order, so
	// experiments can assert that an optimization changed no decisions.
	CommittedChanges []int
	// TurnaroundByClassMin groups TurnaroundAllMin by Config.Classes label
	// (nil when Classes was nil): the per-priority-class turnaround CDFs of
	// the ablation-sched experiment.
	TurnaroundByClassMin map[int][]float64
	// DecidedAtMin is each change's decision time in virtual minutes, -1 if
	// never decided; starvation-freedom tests compare it against deadlines.
	DecidedAtMin []float64
	// GreenViolations counts commits that would have broken the mainline
	// (must be zero for every strategy under these semantics).
	GreenViolations int
	// Undecided counts changes never resolved before the virtual-time cap
	// (nonzero only for pathological strategy/load combinations).
	Undecided int
	// Reliability measurements (Config.FlakePerStepRate > 0):
	// FalseRejections counts rejected changes that genuinely succeed and
	// conflict with nothing committed — innocents lost to injected flakes.
	// FlakesInjected counts injected step failures, StepRetries the in-place
	// retries the reliability layer spent, and FlakyVerifications the failed
	// decisive builds granted a verification re-run instead of rejecting.
	FalseRejections    int
	FlakesInjected     int
	StepRetries        int
	FlakyVerifications int
}

// Summary returns the order statistics of committed-change turnaround.
func (r *Result) Summary() metrics.Summary {
	return metrics.Summarize(r.TurnaroundCommittedMin)
}

// Utilization returns the fraction of worker capacity occupied over the
// makespan (speculative and aborted work included).
func (r *Result) Utilization() float64 {
	if r.Workers <= 0 || r.Makespan <= 0 {
		return 0
	}
	return float64(r.WorkerBusy) / (float64(r.Workers) * float64(r.Makespan))
}

// event kinds.
const (
	evArrival = iota
	evFinish
)

type event struct {
	at   time.Duration
	kind int
	idx  int // arrival: change index; finish: running-build slot id
	seq  int // tiebreak for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind // arrivals before finishes at same instant
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// runningSlot is the engine's bookkeeping for one in-flight build.
type runningSlot struct {
	spec    BuildSpec
	base    int
	start   time.Duration
	finish  time.Duration
	aborted bool
	ident   identCache
}

// identCache memoizes a build's dynamic identity; it is valid until the next
// commit or rejection (the decisions epoch).
type identCache struct {
	epoch int // decisions epoch the value was computed at; 0 = never
	val   string
	valid bool
}

// engine executes one simulation.
type engine struct {
	w   *workload.Workload
	cfg Config
	st  *State

	events   eventHeap
	seq      int
	now      time.Duration
	slots    map[int]*runningSlot
	nextSlot int

	commitIndex map[int]int // change -> mainline position
	decidedAt   map[int]time.Duration

	// finishedBySubject indexes st.Finished entries by subject change.
	finishedBySubject map[int][]int
	// worklist holds changes whose decidability may have changed.
	worklist []int
	inWork   map[int]bool

	// Plan throttling: dirty forces a re-plan (set by finishes/decisions);
	// otherwise arrivals re-plan at most once per cfg.PlanEvery.
	dirty    bool
	havePlan bool
	lastPlan time.Duration

	// decisionsEpoch counts commits+rejections; identCaches keyed on it.
	decisionsEpoch int
	finishedIdent  []identCache // parallel to st.Finished
	// builtBefore marks subjects with at least one finished build, whose
	// later builds run incrementally (§6).
	builtBefore map[int]bool

	// Reliability modeling (cfg.FlakePerStepRate > 0): execSeq numbers the
	// executions of each raw build spec so re-runs draw fresh faults,
	// flakeFailed records whether the latest execution of a spec failed only
	// because of an injected flake (the detector's suspicion signal), and
	// verifiedSubject marks subjects whose one verification re-run of a
	// failed decisive build has been spent.
	execSeq         map[string]int
	flakeFailed     map[string]bool
	verifiedSubject map[int]bool

	res *Result
}

// Run simulates the workload under the strategy and returns measurements.
func Run(w *workload.Workload, s Strategy, cfg Config) *Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 100
	}
	if cfg.MaxVirtualTime <= 0 {
		cfg.MaxVirtualTime = 10000 * time.Hour
	}
	if cfg.PlanEvery <= 0 {
		cfg.PlanEvery = 30 * time.Second
	}
	if cfg.IncrementalFactor <= 0 {
		cfg.IncrementalFactor = 0.4
	}
	if cfg.IncrementalFactor > 1 {
		cfg.IncrementalFactor = 1
	}
	if cfg.FlakeSteps <= 0 {
		cfg.FlakeSteps = 5
	}
	e := &engine{
		w:   w,
		cfg: cfg,
		st: &State{
			W:           w,
			Workers:     cfg.Workers,
			UseAnalyzer: cfg.UseAnalyzer,
			rejected:    map[int]bool{},
			pending:     map[int]bool{},
			committed:   map[int]bool{},
		},
		slots:             map[int]*runningSlot{},
		commitIndex:       map[int]int{},
		decidedAt:         map[int]time.Duration{},
		finishedBySubject: map[int][]int{},
		builtBefore:       map[int]bool{},
		inWork:            map[int]bool{},
		execSeq:           map[string]int{},
		flakeFailed:       map[string]bool{},
		verifiedSubject:   map[int]bool{},
		res:               &Result{Strategy: s.Name(), Workers: cfg.Workers},
	}
	heap.Init(&e.events)
	for _, c := range w.Changes {
		heap.Push(&e.events, event{at: c.SubmitAt, kind: evArrival, idx: c.Index, seq: e.seq})
		e.seq++
	}

	for e.events.Len() > 0 && e.now <= cfg.MaxVirtualTime {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.st.Now = e.now
		e.handle(ev)
		// Drain all events at the same timestamp before re-planning.
		for e.events.Len() > 0 && e.events[0].at == e.now {
			e.handle(heap.Pop(&e.events).(event))
		}
		e.decide()
		if cfg.PruneObsolete {
			e.pruneObsolete()
		}
		if !e.havePlan || e.dirty || e.now-e.lastPlan >= e.cfg.PlanEvery {
			e.reconcile(s)
			e.havePlan = true
			e.dirty = false
			e.lastPlan = e.now
		}
	}
	e.finishMetrics(w)
	return e.res
}

func (e *engine) pushWork(i int) {
	if !e.inWork[i] {
		e.inWork[i] = true
		e.worklist = append(e.worklist, i)
	}
}

func (e *engine) handle(ev event) {
	switch ev.kind {
	case evArrival:
		e.st.Pending = append(e.st.Pending, ev.idx)
		e.st.pending[ev.idx] = true
		e.pushWork(ev.idx)
	case evFinish:
		slot, ok := e.slots[ev.idx]
		if !ok || slot.aborted {
			return
		}
		delete(e.slots, ev.idx)
		cost := e.now - slot.start
		e.res.WorkerBusy += cost
		okRes, guilty := e.groundTruth(slot)
		if e.cfg.FlakePerStepRate > 0 {
			flaked := false
			if okRes {
				// Injected flakes only flip pass→fail, never fail→pass, so
				// the green-mainline invariant cannot be violated by
				// flakiness.
				okRes = e.flakeOutcome(slot)
				flaked = !okRes
				if flaked {
					guilty = -1 // a flake identifies no failing target
				}
			}
			e.flakeFailed[rawSpecKey(slot.spec)] = flaked
		}
		// Attribution surfaces only when the cause is a batch member: a
		// failure caused by an assumed change says nothing about the batch.
		failedMember := -1
		if !okRes && guilty >= 0 {
			for _, m := range slot.spec.Batch {
				if m == guilty {
					failedMember = guilty
					break
				}
			}
		}
		fb := FinishedBuild{
			Spec:         slot.spec,
			BaseCommits:  slot.base,
			OK:           okRes,
			FinishedAt:   e.now,
			Cost:         cost,
			FailedMember: failedMember,
		}
		e.finishedBySubject[fb.Spec.Subject] = append(e.finishedBySubject[fb.Spec.Subject], len(e.st.Finished))
		e.st.Finished = append(e.st.Finished, fb)
		e.finishedIdent = append(e.finishedIdent, slot.ident)
		e.builtBefore[fb.Spec.Subject] = true
		e.res.BuildsFinished++
		e.pushWork(fb.Spec.Subject)
		e.dirty = true
	}
}

// groundTruth evaluates a build's outcome from the workload ground truth.
// On failure it also returns the change index the failure attributes to —
// the individually-failing change, the later member of a real intra-build
// conflict, or the applied change that conflicts with an already-committed
// one (mirroring the real build system's Result.FailedTarget).
func (e *engine) groundTruth(slot *runningSlot) (ok bool, guilty int) {
	applied := slot.spec.applied()
	for _, i := range applied {
		if !e.w.Changes[i].Succeeds {
			return false, i
		}
	}
	for a := 0; a < len(applied); a++ {
		for b := a + 1; b < len(applied); b++ {
			if e.w.Changes[applied[a]].RealConflicts[applied[b]] {
				return false, applied[b]
			}
		}
	}
	// Conflicts with changes committed before the build's base.
	for _, i := range applied {
		for j := range e.w.Changes[i].RealConflicts {
			if pos, ok := e.commitIndex[j]; ok && pos < slot.base {
				return false, i
			}
		}
	}
	return true, -1
}

// rawSpecKey renders a build spec's raw shape (subject, applied list,
// rejection assumptions, batch) as a stable identity for the per-execution
// fault-draw counter. Unlike specIdentity it is independent of the
// normalization epoch, so a re-run of the same spec draws fresh faults.
func rawSpecKey(spec BuildSpec) string {
	buf := make([]byte, 0, 8*(len(spec.Assumed)+len(spec.AssumedRejected)+len(spec.Batch)+1))
	buf = strconv.AppendInt(buf, int64(spec.Subject), 10)
	buf = append(buf, '|')
	for _, a := range spec.Assumed {
		buf = strconv.AppendInt(buf, int64(a), 10)
		buf = append(buf, '+')
	}
	buf = append(buf, '!')
	for _, r := range spec.AssumedRejected {
		buf = strconv.AppendInt(buf, int64(r), 10)
		buf = append(buf, ',')
	}
	for _, m := range spec.Batch {
		buf = append(buf, 'B')
		buf = strconv.AppendInt(buf, int64(m), 10)
	}
	return string(buf)
}

// flakeOutcome perturbs a genuinely-passing build with injected per-step
// transient failures. With the reliability layer on, each flaked step gets
// one in-place retry (a second independent draw) — the unit-level
// fail-then-pass that proves flakiness on identical inputs; under
// LegacyNoRetry any injected failure fails the build outright.
func (e *engine) flakeOutcome(slot *runningSlot) bool {
	key := rawSpecKey(slot.spec)
	exec := e.execSeq[key]
	e.execSeq[key] = exec + 1
	pass := true
	for s := 0; s < e.cfg.FlakeSteps; s++ {
		if !e.flakeDraw(key, exec, s, 0) {
			continue
		}
		e.res.FlakesInjected++
		if e.cfg.LegacyNoRetry {
			pass = false
			continue
		}
		e.res.StepRetries++
		if e.flakeDraw(key, exec, s, 1) {
			e.res.FlakesInjected++
			pass = false
		}
	}
	return pass
}

// flakeDraw is the deterministic per-(identity, execution, step, attempt)
// fault decision: an FNV-1a hash of the tuple against FlakePerStepRate.
func (e *engine) flakeDraw(key string, exec, step, attempt int) bool {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(e.cfg.FlakeSeed) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(key))
	b := make([]byte, 0, 24)
	b = strconv.AppendInt(b, int64(exec), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(step), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(attempt), 10)
	_, _ = h.Write(b)
	// Avalanche the sum (murmur3 fmix64): FNV's final byte shifts the hash
	// by only ~±prime, which would leave the kept top bits — and thus the
	// draw — nearly identical across attempts.
	s := h.Sum64()
	s ^= s >> 33
	s *= 0xff51afd7ed558ccd
	s ^= s >> 33
	s *= 0xc4ceb9fe1a85ec53
	s ^= s >> 33
	u := float64(s>>11) / float64(1<<53)
	return u < e.cfg.FlakePerStepRate
}

// dropFinished removes st.Finished[k] (a failed decisive build granted a
// verification re-run) and rebuilds the subject index, so reconcile no
// longer sees a finished result for the identity and reschedules the build.
func (e *engine) dropFinished(k int) {
	// The dropped result is discarded, so its compute was wasted; the splice
	// hides it from the end-of-run useful/wasted scan.
	e.res.WorkerBusyWasted += e.st.Finished[k].Cost
	e.st.Finished = append(e.st.Finished[:k], e.st.Finished[k+1:]...)
	e.finishedIdent = append(e.finishedIdent[:k], e.finishedIdent[k+1:]...)
	e.finishedBySubject = make(map[int][]int, len(e.finishedBySubject))
	for idx, fb := range e.st.Finished {
		e.finishedBySubject[fb.Spec.Subject] = append(e.finishedBySubject[fb.Spec.Subject], idx)
	}
}

// retryDecisive grants one verification re-run per subject for a failed
// decisive build under injected flakiness: the failed result is dropped, so
// the strategy reschedules the identity (fresh fault draws), and only a
// second consecutive failure rejects the change. Only flake-suspect failures
// qualify — a build that failed on ground truth (bad change or real
// conflict) rejects immediately, mirroring the detector's genuine-failure
// short circuit.
func (e *engine) retryDecisive(subject, finishedIdx int) bool {
	if e.cfg.FlakePerStepRate <= 0 || e.cfg.LegacyNoRetry || e.verifiedSubject[subject] {
		return false
	}
	if !e.flakeFailed[rawSpecKey(e.st.Finished[finishedIdx].Spec)] {
		return false
	}
	e.verifiedSubject[subject] = true
	e.dropFinished(finishedIdx)
	e.res.FlakyVerifications++
	e.dirty = true
	e.pushWork(subject)
	return true
}

// normalize advances a build's base through the committed list, consuming
// assumed changes (in any order — out-of-order commits can only involve
// mutually independent assumptions) and skipping independent commits. It
// reports whether the build is still valid (assumptions not falsified) and,
// if so, the assumptions not yet realized, in submission order.
func (e *engine) normalize(spec BuildSpec, base int) (remaining []int, valid bool) {
	if len(spec.Batch) > 0 {
		// Batch members must not have been separately resolved.
		for _, m := range spec.Batch {
			if e.st.committed[m] || e.st.rejected[m] {
				return nil, false
			}
		}
	}
	var rejectedAssumption map[int]bool
	for _, r := range spec.AssumedRejected {
		if e.st.committed[r] {
			return nil, false // assumed rejected but actually committed
		}
		if rejectedAssumption == nil {
			rejectedAssumption = make(map[int]bool, len(spec.AssumedRejected))
		}
		rejectedAssumption[r] = true
	}
	var assumedSet map[int]bool
	for _, a := range spec.Assumed {
		if e.st.rejected[a] {
			return nil, false // assumed committed but actually rejected
		}
		if assumedSet == nil {
			assumedSet = make(map[int]bool, len(spec.Assumed))
		}
		assumedSet[a] = true
	}
	for pos := base; pos < len(e.st.Committed); pos++ {
		c := e.st.Committed[pos]
		if assumedSet[c] {
			delete(assumedSet, c) // assumption realized
			continue
		}
		if e.conflictsWithBuild(spec, c) || rejectedAssumption[c] {
			return nil, false // a conflicting commit the build did not include
		}
		// Independent commit; build result unaffected.
	}
	for _, a := range spec.Assumed {
		if assumedSet[a] {
			remaining = append(remaining, a)
		}
	}
	return remaining, true
}

// conflictsWithBuild reports whether a committed change c (not applied by
// the build) invalidates the build's result: it conflicts with the subject
// or, for batch builds, with any batch member.
func (e *engine) conflictsWithBuild(spec BuildSpec, c int) bool {
	if e.st.PotentialConflict(spec.Subject, c) {
		return true
	}
	for _, m := range spec.Batch {
		if e.st.PotentialConflict(m, c) {
			return true
		}
	}
	return false
}

// decide commits/rejects changes whose fate is determined, processing the
// worklist of changes whose decidability may have changed.
func (e *engine) decide() {
	for len(e.worklist) > 0 {
		i := e.worklist[0]
		e.worklist = e.worklist[1:]
		e.inWork[i] = false
		if !e.st.pending[i] {
			continue
		}
		fb, fbIdx, ok := e.decisiveBuild(i)
		if !ok {
			continue
		}
		if len(fb.Spec.Batch) > 0 {
			if fb.OK {
				e.st.Finished[fbIdx].used = true
				for _, m := range fb.Spec.Batch {
					e.commit(m)
				}
			} else if len(fb.Spec.Batch) == 1 {
				if !e.retryDecisive(fb.Spec.Batch[0], fbIdx) {
					e.st.Finished[fbIdx].used = true
					e.reject(fb.Spec.Batch[0])
				}
			}
			// Failed multi-change batches are left to the strategy to split
			// and retry (Chromium CQ behavior).
			continue
		}
		if fb.OK {
			e.st.Finished[fbIdx].used = true
			e.commit(i)
		} else if !e.retryDecisive(i, fbIdx) {
			e.st.Finished[fbIdx].used = true
			e.reject(i)
		}
	}
}

// decisiveBuild finds a finished build that decides change i given the
// current committed/rejected reality, returning its st.Finished index too
// (so a suspect failure can be dropped for a verification re-run). A change
// is decidable only when every pending conflicting predecessor is accounted
// for: resolved, or (for batch builds) a member of the same batch.
func (e *engine) decisiveBuild(i int) (FinishedBuild, int, bool) {
	preds := e.st.PendingConflictingPredecessors(i)
	idxs := e.finishedBySubject[i]
	for k := len(idxs) - 1; k >= 0; k-- {
		fb := e.st.Finished[idxs[k]]
		if len(preds) > 0 && !fb.Spec.AllowReorder {
			if len(fb.Spec.Batch) == 0 {
				continue
			}
			inBatch := make(map[int]bool, len(fb.Spec.Batch))
			for _, m := range fb.Spec.Batch {
				inBatch[m] = true
			}
			blocked := false
			for _, p := range preds {
				if !inBatch[p] {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
		}
		remaining, valid := e.normalize(fb.Spec, fb.BaseCommits)
		if !valid || len(remaining) > 0 {
			continue
		}
		ok := true
		for _, r := range fb.Spec.AssumedRejected {
			if !e.st.rejected[r] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		return fb, idxs[k], true
	}
	return FinishedBuild{}, -1, false
}

// onResolved pushes every pending change that might be unblocked by the
// resolution of i onto the worklist.
func (e *engine) onResolved(i int) {
	if e.st.UseAnalyzer {
		for j := range e.w.Changes[i].PotentialConflicts {
			if j > i && e.st.pending[j] {
				e.pushWork(j)
			}
		}
	} else if len(e.st.Pending) > 0 {
		e.pushWork(e.st.Pending[0])
	}
}

func (e *engine) commit(i int) {
	e.dirty = true
	e.decisionsEpoch++
	if !e.st.pending[i] {
		return
	}
	// Green-mainline invariant check: committing a change that fails or
	// really conflicts with a prior commit would break master.
	if !e.w.Changes[i].Succeeds {
		e.res.GreenViolations++
	}
	for j := range e.w.Changes[i].RealConflicts {
		if e.st.committed[j] {
			e.res.GreenViolations++
		}
	}
	e.commitIndex[i] = len(e.st.Committed)
	e.st.Committed = append(e.st.Committed, i)
	e.st.committed[i] = true
	e.removePending(i)
	e.decidedAt[i] = e.now
	e.res.Committed++
	e.onResolved(i)
}

func (e *engine) reject(i int) {
	e.dirty = true
	e.decisionsEpoch++
	if !e.st.pending[i] {
		return
	}
	// False-rejection accounting under injected flakiness: the change
	// genuinely succeeds and conflicts with nothing committed, so only a
	// flake could have failed its decisive build.
	if e.cfg.FlakePerStepRate > 0 && e.w.Changes[i].Succeeds {
		innocent := true
		for j := range e.w.Changes[i].RealConflicts {
			if e.st.committed[j] {
				innocent = false
				break
			}
		}
		if innocent {
			e.res.FalseRejections++
		}
	}
	e.st.rejected[i] = true
	e.removePending(i)
	e.decidedAt[i] = e.now
	e.res.Rejected++
	e.onResolved(i)
}

func (e *engine) removePending(i int) {
	delete(e.st.pending, i)
	// Pending is ascending; binary search for the slot.
	k := sort.SearchInts(e.st.Pending, i)
	if k < len(e.st.Pending) && e.st.Pending[k] == i {
		e.st.Pending = append(e.st.Pending[:k], e.st.Pending[k+1:]...)
	}
}

// specIdentity canonically identifies a build for reconciliation: the
// remaining assumptions after normalization, the subject, the batch, and the
// still-unresolved rejection assumptions.
func (e *engine) specIdentity(spec BuildSpec, base int) (string, bool) {
	remaining, valid := e.normalize(spec, base)
	if !valid {
		return "", false
	}
	var rej []int
	for _, r := range spec.AssumedRejected {
		if e.st.pending[r] {
			rej = append(rej, r)
		}
	}
	sort.Ints(rej)
	buf := make([]byte, 0, 8*(len(remaining)+len(rej)+len(spec.Batch)+1))
	for _, a := range remaining {
		buf = strconv.AppendInt(buf, int64(a), 10)
		buf = append(buf, '+')
	}
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(spec.Subject), 10)
	buf = append(buf, '!')
	for _, r := range rej {
		buf = strconv.AppendInt(buf, int64(r), 10)
		buf = append(buf, ',')
	}
	if len(spec.Batch) > 0 {
		buf = append(buf, 'B')
		for _, m := range spec.Batch {
			buf = strconv.AppendInt(buf, int64(m), 10)
			buf = append(buf, ',')
		}
	}
	if spec.AllowReorder {
		buf = append(buf, 'R')
	}
	return string(buf), true
}

// slotIdentity is specIdentity memoized per decisions epoch.
func (e *engine) slotIdentity(slot *runningSlot) (string, bool) {
	if slot.ident.epoch == e.decisionsEpoch+1 {
		return slot.ident.val, slot.ident.valid
	}
	v, ok := e.specIdentity(slot.spec, slot.base)
	slot.ident = identCache{epoch: e.decisionsEpoch + 1, val: v, valid: ok}
	return v, ok
}

// finishedIdentity is specIdentity for st.Finished[k], memoized.
func (e *engine) finishedIdentity(k int) (string, bool) {
	c := &e.finishedIdent[k]
	if c.epoch == e.decisionsEpoch+1 {
		return c.val, c.valid
	}
	fb := e.st.Finished[k]
	v, ok := e.specIdentity(fb.Spec, fb.BaseCommits)
	*c = identCache{epoch: e.decisionsEpoch + 1, val: v, valid: ok}
	return v, ok
}

// reconcile aligns running builds with the strategy's desired set.
func (e *engine) reconcile(s Strategy) {
	// Refresh the State's running view first.
	e.st.Running = e.st.Running[:0]
	for _, slot := range e.slots {
		e.st.Running = append(e.st.Running, RunningBuild{
			Spec: slot.spec, BaseCommits: slot.base, Start: slot.start, Finish: slot.finish,
		})
	}
	sort.Slice(e.st.Running, func(a, b int) bool {
		if e.st.Running[a].Start != e.st.Running[b].Start {
			return e.st.Running[a].Start < e.st.Running[b].Start
		}
		return e.st.Running[a].Spec.Subject < e.st.Running[b].Spec.Subject
	})

	desired := s.Plan(e.st)

	base := len(e.st.Committed)
	want := map[string]BuildSpec{}
	var order []string
	skippedFinished, skippedInvalid := 0, 0
	for _, spec := range desired {
		if len(want) >= e.cfg.Workers {
			break
		}
		id, valid := e.specIdentity(spec, base)
		if !valid {
			skippedInvalid++
			continue
		}
		if _, dup := want[id]; dup {
			continue
		}
		// Skip builds whose result already exists and is still valid.
		if e.haveFinished(spec.Subject, id) {
			skippedFinished++
			continue
		}
		want[id] = spec
		order = append(order, id)
	}
	if e.cfg.Trace != nil {
		fmt.Fprintf(e.cfg.Trace, "t=%v pending=%d desired=%d want=%d skippedFin=%d skippedInv=%d running=%d\n",
			e.now, len(e.st.Pending), len(desired), len(want), skippedFinished, skippedInvalid, len(e.slots))
		if len(want) == 0 && len(e.slots) == 0 && len(e.st.Pending) > 0 {
			for _, spec := range desired {
				id, valid := e.specIdentity(spec, base)
				fb, have := FinishedBuild{}, false
				if valid {
					fb, have = e.finishedMatch(spec.Subject, id)
				}
				fmt.Fprintf(e.cfg.Trace, "  STUCK spec subj=%d assumed=%v rej=%v batch=%v id=%q valid=%v haveFin=%v fbOK=%v fbBatch=%v\n",
					spec.Subject, spec.Assumed, spec.AssumedRejected, spec.Batch, id, valid, have, fb.OK, fb.Spec.Batch)
				if have {
					preds := e.st.PendingConflictingPredecessors(spec.Subject)
					fmt.Fprintf(e.cfg.Trace, "  subject preds=%v\n", preds)
				}
			}
		}
	}

	// Abort running builds whose assumptions have been falsified. Builds that
	// are merely absent from the plan (e.g. the planner's budget truncated
	// them this round) stay running while workers are free: their results may
	// still be needed, and rebuilding them later would only add latency.
	runningBy := map[string]bool{}
	var unwanted []int // slot IDs of valid-but-unplanned builds
	for slotID, slot := range e.slots {
		id, valid := e.slotIdentity(slot)
		if !valid {
			e.abortSlot(slotID)
			continue
		}
		if _, wanted := want[id]; wanted && !runningBy[id] {
			runningBy[id] = true
			continue
		}
		unwanted = append(unwanted, slotID)
	}

	// New builds to start, in priority order.
	var starts []string
	for _, id := range order {
		if !runningBy[id] {
			starts = append(starts, id)
		}
	}
	// Preempt valid-but-unplanned builds only when a selected build needs the
	// worker (the paper's planner aborts builds that fall out of the selected
	// set; we do so lazily, on demand), and only when the newcomer's value
	// clearly exceeds the running build's — a damping margin that prevents
	// churn between near-equal-value builds as probabilities drift.
	free := e.cfg.Workers - len(e.slots)
	if free < len(starts) && len(unwanted) > 0 {
		// Lowest-value, newest-started builds are sacrificed first.
		sort.Slice(unwanted, func(a, b int) bool {
			sa, sb := e.slots[unwanted[a]], e.slots[unwanted[b]]
			if sa.spec.Priority != sb.spec.Priority {
				return sa.spec.Priority < sb.spec.Priority
			}
			if sa.start != sb.start {
				return sa.start > sb.start
			}
			return sa.spec.Subject > sb.spec.Subject
		})
		k := 0
		for _, id := range starts {
			if free >= len(starts) || k >= len(unwanted) {
				break
			}
			slot := e.slots[unwanted[k]]
			margin := 0.02 + 0.2*math.Abs(slot.spec.Priority)
			if want[id].Priority <= slot.spec.Priority+margin {
				continue // not clearly better; let the running build finish
			}
			e.abortSlot(unwanted[k])
			free++
			k++
		}
	}
	for _, id := range starts {
		if free <= 0 {
			break
		}
		spec := want[id]
		dur := e.w.Changes[spec.Subject].Duration
		if e.builtBefore[spec.Subject] {
			// §6: minimal build steps + artifact cache make re-builds of the
			// same subject under new assumptions substantially cheaper.
			dur = time.Duration(float64(dur) * e.cfg.IncrementalFactor)
		}
		slot := &runningSlot{
			spec:   spec,
			base:   len(e.st.Committed),
			start:  e.now,
			finish: e.now + dur,
		}
		e.slots[e.nextSlot] = slot
		heap.Push(&e.events, event{at: slot.finish, kind: evFinish, idx: e.nextSlot, seq: e.seq})
		e.seq++
		e.nextSlot++
		e.res.BuildsStarted++
		free--
	}
}

// abortSlot cancels a running build, accounting the worker time it consumed
// so far as busy and wasted.
func (e *engine) abortSlot(slotID int) {
	slot := e.slots[slotID]
	slot.aborted = true
	delete(e.slots, slotID)
	cost := e.now - slot.start
	e.res.WorkerBusy += cost
	e.res.WorkerBusyWasted += cost
	e.res.BuildsAborted++
}

// pruneObsolete eagerly aborts running builds whose results can no longer
// affect any decision — the simulator's mirror of the planner's per-
// resolution pruning (§4j). Without it, a build whose subject was resolved by
// a sibling speculation runs to completion: normalize treats the subject's
// own commit as an independent commit (a change never potentially conflicts
// with itself), so the slot stays "valid" and burns a worker for nothing.
func (e *engine) pruneObsolete() {
	for slotID, slot := range e.slots {
		if e.slotObsolete(slot) {
			e.abortSlot(slotID)
			e.res.BuildsPruned++
			e.dirty = true
		}
	}
}

// slotObsolete is the obsolescence predicate for a running slot: the subject
// is already resolved (plain builds; batch members are covered by normalize),
// the assumptions were falsified, or a finished valid build already holds the
// slot's identity (dominated).
func (e *engine) slotObsolete(slot *runningSlot) bool {
	if len(slot.spec.Batch) == 0 && !e.st.pending[slot.spec.Subject] {
		return true
	}
	id, valid := e.slotIdentity(slot)
	if !valid {
		return true
	}
	return e.haveFinished(slot.spec.Subject, id)
}

// haveFinished reports whether a finished, still-valid build with the given
// identity exists for the subject.
func (e *engine) haveFinished(subject int, id string) bool {
	_, ok := e.finishedMatch(subject, id)
	return ok
}

// finishedMatch returns the finished, still-valid build with the given
// identity for the subject, if any.
func (e *engine) finishedMatch(subject int, id string) (FinishedBuild, bool) {
	idxs := e.finishedBySubject[subject]
	for k := len(idxs) - 1; k >= 0; k-- {
		fid, valid := e.finishedIdentity(idxs[k])
		if valid && fid == id {
			return e.st.Finished[idxs[k]], true
		}
	}
	return FinishedBuild{}, false
}

// finishMetrics computes turnaround and throughput after the run.
func (e *engine) finishMetrics(w *workload.Workload) {
	var firstArrival, lastDecision time.Duration
	if len(w.Changes) > 0 {
		firstArrival = w.Changes[0].SubmitAt
	}
	if e.cfg.Classes != nil {
		e.res.TurnaroundByClassMin = make(map[int][]float64)
	}
	e.res.DecidedAtMin = make([]float64, len(w.Changes))
	for _, c := range w.Changes {
		at, ok := e.decidedAt[c.Index]
		if !ok {
			e.res.Undecided++
			e.res.DecidedAtMin[c.Index] = -1
			continue
		}
		e.res.DecidedAtMin[c.Index] = at.Minutes()
		if at > lastDecision {
			lastDecision = at
		}
		turn := (at - c.SubmitAt).Minutes()
		e.res.TurnaroundAllMin = append(e.res.TurnaroundAllMin, turn)
		if e.cfg.Classes != nil {
			cl := 0
			if c.Index < len(e.cfg.Classes) {
				cl = e.cfg.Classes[c.Index]
			}
			e.res.TurnaroundByClassMin[cl] = append(e.res.TurnaroundByClassMin[cl], turn)
		}
		if e.st.committed[c.Index] {
			e.res.TurnaroundCommittedMin = append(e.res.TurnaroundCommittedMin, turn)
		}
	}
	e.res.Makespan = lastDecision - firstArrival
	if e.res.Makespan > 0 {
		e.res.ThroughputPerHour = float64(e.res.Committed) / e.res.Makespan.Hours()
	}
	// Useful/wasted split: finished builds that decided a change were useful;
	// every other finished build was speculation that never paid off. Abort
	// and drop sites accumulated their waste as it happened.
	for k := range e.st.Finished {
		if e.st.Finished[k].used {
			e.res.WorkerBusyUseful += e.st.Finished[k].Cost
		} else {
			e.res.WorkerBusyWasted += e.st.Finished[k].Cost
		}
	}
	if e.res.Committed > 0 {
		e.res.WorkerMinutesPerCommit = e.res.WorkerBusy.Minutes() / float64(e.res.Committed)
	}
	e.res.CommittedChanges = append([]int(nil), e.st.Committed...)
}
