package sim

import (
	"fmt"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/workload"
)

// change6 formats a workload change ID from an index.
func change6(i int) change.ID { return change.ID(fmt.Sprintf("c%06d", i)) }

// serialStrategy builds one change at a time, strictly in order — the
// simplest correct strategy, used to validate engine mechanics.
type serialStrategy struct{}

func (serialStrategy) Name() string { return "serial" }
func (serialStrategy) Plan(st *State) []BuildSpec {
	if len(st.Pending) == 0 {
		return nil
	}
	return []BuildSpec{{Subject: st.Pending[0]}}
}

// chainStrategy builds every pending change on top of all pending
// predecessors (analyzer-blind optimistic chain).
type chainStrategy struct{}

func (chainStrategy) Name() string { return "chain" }
func (chainStrategy) Plan(st *State) []BuildSpec {
	var out []BuildSpec
	for _, i := range st.Pending {
		out = append(out, BuildSpec{
			Subject:  i,
			Assumed:  st.PendingConflictingPredecessors(i),
			Priority: -float64(i),
		})
	}
	return out
}

func smallWorkload(seed int64, n int) *workload.Workload {
	return workload.Generate(workload.Config{Seed: seed, Count: n, RatePerHour: 120})
}

func TestSerialStrategyDrains(t *testing.T) {
	w := smallWorkload(1, 60)
	res := Run(w, serialStrategy{}, Config{Workers: 4, UseAnalyzer: false})
	if res.Committed+res.Rejected != 60 {
		t.Fatalf("decided %d+%d of 60 (undecided %d)", res.Committed, res.Rejected, res.Undecided)
	}
	if res.GreenViolations != 0 {
		t.Fatalf("green violations: %d", res.GreenViolations)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestOutcomesMatchEventualGroundTruth(t *testing.T) {
	// Any correct strategy must produce exactly the workload's eventual
	// outcomes (they are scheduling independent).
	w := smallWorkload(2, 120)
	eventual := w.EventualOutcomes()
	for _, cfgAnalyzer := range []bool{true, false} {
		res := Run(w, chainStrategy{}, Config{Workers: 16, UseAnalyzer: cfgAnalyzer})
		if res.Committed+res.Rejected != len(w.Changes) {
			t.Fatalf("analyzer=%v: decided %d of %d", cfgAnalyzer,
				res.Committed+res.Rejected, len(w.Changes))
		}
		wantCommits := 0
		for _, v := range eventual {
			if v {
				wantCommits++
			}
		}
		if res.Committed != wantCommits {
			t.Fatalf("analyzer=%v: committed %d, ground truth %d",
				cfgAnalyzer, res.Committed, wantCommits)
		}
		if res.GreenViolations != 0 {
			t.Fatalf("green violations: %d", res.GreenViolations)
		}
	}
}

func TestAnalyzerSpeedsUpDraining(t *testing.T) {
	// With the conflict analyzer, independent changes commit in parallel, so
	// turnaround must improve over the analyzer-less run.
	w := smallWorkload(3, 150)
	with := Run(w, chainStrategy{}, Config{Workers: 32, UseAnalyzer: true})
	without := Run(w, chainStrategy{}, Config{Workers: 32, UseAnalyzer: false})
	if with.Summary().P95 >= without.Summary().P95 {
		t.Fatalf("analyzer did not help: with=%.1f without=%.1f",
			with.Summary().P95, without.Summary().P95)
	}
}

func TestWorkerLimitRespected(t *testing.T) {
	w := smallWorkload(4, 80)
	// A strategy demanding everything at once.
	res := Run(w, chainStrategy{}, Config{Workers: 2, UseAnalyzer: true})
	// The engine can never run more than Workers builds; validated
	// indirectly: builds started - aborted - finished == 0 at drain and
	// makespan is long under 2 workers.
	if res.Committed+res.Rejected != 80 {
		t.Fatalf("did not drain: %d", res.Committed+res.Rejected)
	}
	res16 := Run(w, chainStrategy{}, Config{Workers: 64, UseAnalyzer: true})
	if res16.Summary().P95 > res.Summary().P95 {
		t.Fatalf("more workers should not hurt: %v vs %v",
			res16.Summary().P95, res.Summary().P95)
	}
}

func TestSpeculativeResultReusedAcrossCommits(t *testing.T) {
	// Two conflicting, succeeding changes; chain strategy builds c2 on c1
	// speculatively. After c1 commits, c2's speculative build must decide it
	// without a restart: total finished builds == 2.
	w := &workload.Workload{
		Cfg: workload.Config{Count: 2},
		Changes: []*workload.Change{
			{
				Index: 0, ID: "c000000", SubmitAt: 0,
				Duration: 30 * time.Minute, Succeeds: true,
				PotentialConflicts: map[int]bool{1: true},
				RealConflicts:      map[int]bool{},
			},
			{
				Index: 1, ID: "c000001", SubmitAt: time.Minute,
				Duration: 30 * time.Minute, Succeeds: true,
				PotentialConflicts: map[int]bool{0: true},
				RealConflicts:      map[int]bool{},
			},
		},
	}
	res := Run(w, chainStrategy{}, Config{Workers: 4, UseAnalyzer: true})
	if res.Committed != 2 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.BuildsFinished != 2 || res.BuildsAborted != 0 {
		t.Fatalf("builds finished=%d aborted=%d, want 2/0",
			res.BuildsFinished, res.BuildsAborted)
	}
	// c2's decision should come right after c1's build finished plus its own
	// remaining time: both started within the first minute, so total
	// makespan ≈ 31 minutes, NOT 60+.
	if res.Makespan > 40*time.Minute {
		t.Fatalf("makespan = %v, speculation not reused", res.Makespan)
	}
}

func TestMisspeculationAbortsAndRecovers(t *testing.T) {
	// c1 fails; chain builds c1 and c1+c2. After c1 is rejected, the c1+c2
	// build is falsified and aborted; c2 rebuilds alone and commits.
	w := &workload.Workload{
		Cfg: workload.Config{Count: 2},
		Changes: []*workload.Change{
			{
				Index: 0, ID: "c000000", SubmitAt: 0,
				Duration: 30 * time.Minute, Succeeds: false,
				PotentialConflicts: map[int]bool{1: true},
				RealConflicts:      map[int]bool{},
			},
			{
				Index: 1, ID: "c000001", SubmitAt: time.Minute,
				Duration: 30 * time.Minute, Succeeds: true,
				PotentialConflicts: map[int]bool{0: true},
				RealConflicts:      map[int]bool{},
			},
		},
	}
	res := Run(w, chainStrategy{}, Config{Workers: 4, UseAnalyzer: true})
	if res.Committed != 1 || res.Rejected != 1 {
		t.Fatalf("committed=%d rejected=%d", res.Committed, res.Rejected)
	}
	if res.BuildsAborted == 0 {
		t.Fatal("expected the misspeculated build to be aborted")
	}
	// c2's turnaround: ~31 min wasted + 30 min rebuild ≈ 60 min.
	if res.Makespan < 55*time.Minute {
		t.Fatalf("makespan = %v, expected restart cost", res.Makespan)
	}
}

func TestRealConflictRejectsSecondChange(t *testing.T) {
	// Both succeed alone but really conflict: first commits, second rejected.
	w := &workload.Workload{
		Cfg: workload.Config{Count: 2},
		Changes: []*workload.Change{
			{
				Index: 0, ID: "c000000", SubmitAt: 0,
				Duration: 10 * time.Minute, Succeeds: true,
				PotentialConflicts: map[int]bool{1: true},
				RealConflicts:      map[int]bool{1: true},
			},
			{
				Index: 1, ID: "c000001", SubmitAt: time.Minute,
				Duration: 10 * time.Minute, Succeeds: true,
				PotentialConflicts: map[int]bool{0: true},
				RealConflicts:      map[int]bool{0: true},
			},
		},
	}
	res := Run(w, chainStrategy{}, Config{Workers: 4, UseAnalyzer: true})
	if res.Committed != 1 || res.Rejected != 1 {
		t.Fatalf("committed=%d rejected=%d", res.Committed, res.Rejected)
	}
	if res.GreenViolations != 0 {
		t.Fatalf("green violations: %d", res.GreenViolations)
	}
}

func TestIndependentCommitDoesNotInvalidateBuilds(t *testing.T) {
	// c0 ⊥ c1: both build in parallel; c0's commit must not abort c1's
	// running build (normalization skips independent commits).
	w := &workload.Workload{
		Cfg: workload.Config{Count: 2},
		Changes: []*workload.Change{
			{
				Index: 0, ID: "c000000", SubmitAt: 0,
				Duration: 10 * time.Minute, Succeeds: true,
				PotentialConflicts: map[int]bool{},
				RealConflicts:      map[int]bool{},
			},
			{
				Index: 1, ID: "c000001", SubmitAt: 0,
				Duration: 30 * time.Minute, Succeeds: true,
				PotentialConflicts: map[int]bool{},
				RealConflicts:      map[int]bool{},
			},
		},
	}
	res := Run(w, chainStrategy{}, Config{Workers: 4, UseAnalyzer: true})
	if res.Committed != 2 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.BuildsAborted != 0 || res.BuildsFinished != 2 {
		t.Fatalf("aborted=%d finished=%d, want 0/2", res.BuildsAborted, res.BuildsFinished)
	}
	if res.Makespan > 31*time.Minute {
		t.Fatalf("makespan = %v, parallel independent commits expected", res.Makespan)
	}
}

func TestBatchCommitsAtomically(t *testing.T) {
	// Three mutually-conflicting succeeding changes in one batch commit
	// together after a single build.
	mk := func(i int, at time.Duration) *workload.Change {
		pc := map[int]bool{}
		for j := 0; j < 3; j++ {
			if j != i {
				pc[j] = true
			}
		}
		return &workload.Change{
			Index: i, ID: change6(i), SubmitAt: at,
			Duration: 20 * time.Minute, Succeeds: true,
			PotentialConflicts: pc, RealConflicts: map[int]bool{},
		}
	}
	w := &workload.Workload{
		Cfg:     workload.Config{Count: 3},
		Changes: []*workload.Change{mk(0, 0), mk(1, 0), mk(2, 0)},
	}
	batch := batchStrategy{}
	res := Run(w, batch, Config{Workers: 4, UseAnalyzer: true})
	if res.Committed != 3 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.BuildsFinished != 1 {
		t.Fatalf("finished = %d, want single batch build", res.BuildsFinished)
	}
}

type batchStrategy struct{}

func (batchStrategy) Name() string { return "batch-test" }
func (batchStrategy) Plan(st *State) []BuildSpec {
	if len(st.Pending) == 0 {
		return nil
	}
	batch := append([]int(nil), st.Pending...)
	return []BuildSpec{{Subject: batch[len(batch)-1], Batch: batch}}
}

func TestDeterministicRuns(t *testing.T) {
	w := smallWorkload(5, 100)
	a := Run(w, chainStrategy{}, Config{Workers: 8, UseAnalyzer: true})
	b := Run(w, chainStrategy{}, Config{Workers: 8, UseAnalyzer: true})
	if a.Committed != b.Committed || a.Rejected != b.Rejected ||
		a.Makespan != b.Makespan || a.BuildsStarted != b.BuildsStarted {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestEmptyWorkload(t *testing.T) {
	w := &workload.Workload{}
	res := Run(w, serialStrategy{}, Config{Workers: 1})
	if res.Committed != 0 || res.Rejected != 0 || len(res.TurnaroundAllMin) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

// hedgeStrategy over-plans on purpose: besides the chain build, every change
// without pending conflicting predecessors also gets an AllowReorder variant.
// Once the chain build decides the subject, the variant is a dangling sibling
// — still "valid" to normalize (a change never potentially conflicts with
// itself) but unable to affect any decision. Exactly the waste §4j prunes.
type hedgeStrategy struct{}

func (hedgeStrategy) Name() string { return "hedge-test" }
func (hedgeStrategy) Plan(st *State) []BuildSpec {
	var out []BuildSpec
	for _, i := range st.Pending {
		preds := st.PendingConflictingPredecessors(i)
		out = append(out, BuildSpec{Subject: i, Assumed: preds, Priority: 1})
		if i > 0 && len(preds) == 0 {
			out = append(out, BuildSpec{Subject: i, AllowReorder: true})
		}
	}
	return out
}

// hedgedPair is a two-change workload where hedgeStrategy leaves a dangling
// sibling build: c0 (10 min) commits, c1's chain build (30 min) decides c1 at
// t=30, and c1's reorder variant started at t=10 would burn a worker until
// t=40 unless pruned.
func hedgedPair() *workload.Workload {
	return &workload.Workload{
		Cfg: workload.Config{Count: 2},
		Changes: []*workload.Change{
			{
				Index: 0, ID: "c000000", SubmitAt: 0,
				Duration: 10 * time.Minute, Succeeds: true,
				PotentialConflicts: map[int]bool{1: true},
				RealConflicts:      map[int]bool{},
			},
			{
				Index: 1, ID: "c000001", SubmitAt: 0,
				Duration: 30 * time.Minute, Succeeds: true,
				PotentialConflicts: map[int]bool{0: true},
				RealConflicts:      map[int]bool{},
			},
		},
	}
}

func TestPruneObsoleteAbortsDanglingSibling(t *testing.T) {
	base := Run(hedgedPair(), hedgeStrategy{}, Config{Workers: 2, UseAnalyzer: true})
	pruned := Run(hedgedPair(), hedgeStrategy{}, Config{Workers: 2, UseAnalyzer: true, PruneObsolete: true})
	for _, r := range []*Result{base, pruned} {
		if r.Committed != 2 || r.Rejected != 0 || r.GreenViolations != 0 {
			t.Fatalf("outcomes: %+v", r)
		}
	}
	if base.BuildsPruned != 0 {
		t.Fatalf("baseline pruned %d builds with pruning disabled", base.BuildsPruned)
	}
	if pruned.BuildsPruned == 0 {
		t.Fatal("dangling sibling never pruned")
	}
	// The sibling ran 10→40 min unpruned but only 10→30 min pruned, so the
	// pruned run pays strictly less worker time for identical decisions.
	if pruned.WorkerBusy >= base.WorkerBusy {
		t.Fatalf("pruning did not cut worker time: pruned=%v base=%v",
			pruned.WorkerBusy, base.WorkerBusy)
	}
	if pruned.WorkerBusyUseful != base.WorkerBusyUseful {
		t.Fatalf("useful compute changed: pruned=%v base=%v",
			pruned.WorkerBusyUseful, base.WorkerBusyUseful)
	}
	if pruned.WorkerMinutesPerCommit >= base.WorkerMinutesPerCommit {
		t.Fatalf("worker-minutes/commit did not improve: pruned=%v base=%v",
			pruned.WorkerMinutesPerCommit, base.WorkerMinutesPerCommit)
	}
}

func TestComputeSplitInvariant(t *testing.T) {
	// Useful + Wasted must equal WorkerBusy exactly: every slot's cost is
	// classified once, at abort, drop, or end-of-run.
	w := smallWorkload(7, 120)
	for _, prune := range []bool{false, true} {
		res := Run(w, chainStrategy{}, Config{Workers: 8, UseAnalyzer: true, PruneObsolete: prune})
		if got := res.WorkerBusyUseful + res.WorkerBusyWasted; got != res.WorkerBusy {
			t.Fatalf("prune=%v: useful %v + wasted %v = %v != busy %v",
				prune, res.WorkerBusyUseful, res.WorkerBusyWasted, got, res.WorkerBusy)
		}
		if res.WorkerBusyUseful == 0 {
			t.Fatalf("prune=%v: no useful compute recorded", prune)
		}
		want := res.WorkerBusy.Minutes() / float64(res.Committed)
		if diff := res.WorkerMinutesPerCommit - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("prune=%v: worker-minutes/commit %v, want %v", prune, res.WorkerMinutesPerCommit, want)
		}
	}
}

func TestPruneObsoletePreservesOutcomes(t *testing.T) {
	// Pruning only removes builds that cannot affect decisions, so the
	// committed/rejected tallies must be identical with it on or off.
	w := smallWorkload(8, 150)
	base := Run(w, chainStrategy{}, Config{Workers: 16, UseAnalyzer: true})
	pruned := Run(w, chainStrategy{}, Config{Workers: 16, UseAnalyzer: true, PruneObsolete: true})
	if base.Committed != pruned.Committed || base.Rejected != pruned.Rejected {
		t.Fatalf("decisions changed: base %d/%d, pruned %d/%d",
			base.Committed, base.Rejected, pruned.Committed, pruned.Rejected)
	}
	if pruned.GreenViolations != 0 {
		t.Fatalf("green violations: %d", pruned.GreenViolations)
	}
	if pruned.WorkerBusy > base.WorkerBusy {
		t.Fatalf("pruning increased worker time: %v > %v", pruned.WorkerBusy, base.WorkerBusy)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	w := smallWorkload(6, 60)
	res := Run(w, serialStrategy{}, Config{Workers: 1, UseAnalyzer: false})
	u := res.Utilization()
	// A single worker processing a serial queue stays mostly busy.
	if u <= 0.3 || u > 1.001 {
		t.Fatalf("utilization = %v", u)
	}
	// Degenerate result has zero utilization.
	var empty Result
	if empty.Utilization() != 0 {
		t.Fatal("empty utilization should be 0")
	}
}
