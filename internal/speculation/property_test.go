package speculation

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/predict"
)

// randPredictor assigns random but fixed probabilities per change/pair.
type randPredictor struct {
	succ map[change.ID]float64
	conf map[string]float64
}

func newRandPredictor(rng *rand.Rand, pending []*change.Change) randPredictor {
	p := randPredictor{succ: map[change.ID]float64{}, conf: map[string]float64{}}
	for _, c := range pending {
		p.succ[c.ID] = 0.05 + 0.9*rng.Float64()
	}
	for i, a := range pending {
		for j := i + 1; j < len(pending); j++ {
			b := pending[j]
			k := string(a.ID) + "|" + string(b.ID)
			p.conf[k] = 0.3 * rng.Float64()
		}
	}
	return p
}

func (p randPredictor) PredictSuccess(c *change.Change) float64 { return p.succ[c.ID] }
func (p randPredictor) PredictConflict(a, b *change.Change) float64 {
	k := string(a.ID) + "|" + string(b.ID)
	if a.ID > b.ID {
		k = string(b.ID) + "|" + string(a.ID)
	}
	return p.conf[k]
}

// TestLeafProbabilitiesPartitionUnity: for every subject, the P_needed of
// its fully-enumerated leaves partitions the outcome space of its
// predecessors — the probabilities must sum to 1 (up to clamping effects;
// with unclamped q values the identity is exact).
func TestLeafProbabilitiesPartitionUnity(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 2 + rng.Intn(6)
		pending := make([]*change.Change, n)
		for i := range pending {
			pending[i] = &change.Change{ID: change.ID(fmt.Sprintf("c%d", i))}
		}
		// Random conflict graph.
		cg := conflict.NewGraph(nil)
		for _, c := range pending {
			cg.AddChange(c.ID)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					cg.AddEdge(pending[i].ID, pending[j].ID)
				}
			}
		}
		e := New(newRandPredictor(rng, pending))
		plan := e.Plan(Request{Pending: pending, Conflicts: cg, Budget: 0})
		sums := map[change.ID]float64{}
		for _, b := range plan.Builds {
			sums[b.Subject] += b.PNeeded
		}
		for id, s := range sums {
			// Clamping at 0/1 can only lose mass, never create it.
			if s > 1+1e-9 {
				t.Fatalf("trial %d: subject %s leaf probabilities sum to %v > 1", trial, id, s)
			}
			if s < 0.5 {
				t.Fatalf("trial %d: subject %s leaf probabilities sum to %v, lost too much mass", trial, id, s)
			}
		}
		if len(sums) != n {
			t.Fatalf("trial %d: %d subjects emitted, want %d", trial, len(sums), n)
		}
	}
}

// TestChainDepthValueMonotone: along the optimistic chain (all assumptions
// = commit), P_needed never increases with depth.
func TestChainDepthValueMonotone(t *testing.T) {
	e := New(predict.Static{Success: 0.9, Conflict: 0.05})
	n := 8
	pending := mkChanges(n)
	plan := e.Plan(Request{Pending: pending, Budget: 0})
	chainP := map[int]float64{}
	for _, b := range plan.Builds {
		if len(b.AssumedRejected) == 0 {
			chainP[len(b.Changes)] = b.PNeeded
		}
	}
	prev := math.Inf(1)
	for d := 1; d <= n; d++ {
		p, ok := chainP[d]
		if !ok {
			t.Fatalf("missing chain build of depth %d", d)
		}
		if p > prev+1e-12 {
			t.Fatalf("chain P_needed increased at depth %d: %v > %v", d, p, prev)
		}
		prev = p
	}
}

// TestPlanScalesToHundreds: the engine must handle hundreds of pending
// changes within the safety caps (O(n + budget) space per §7.1).
func TestPlanScalesToHundreds(t *testing.T) {
	n := 400
	pending := mkChanges(n)
	cg := conflict.NewGraph(nil)
	for _, c := range pending {
		cg.AddChange(c.ID)
	}
	// Sparse conflicts: each change conflicts with the previous two.
	for i := 2; i < n; i++ {
		cg.AddEdge(pending[i].ID, pending[i-1].ID)
		cg.AddEdge(pending[i].ID, pending[i-2].ID)
	}
	e := New(predict.Static{Success: 0.85, Conflict: 0.1})
	plan := e.Plan(Request{Pending: pending, Conflicts: cg, Budget: 300})
	if len(plan.Builds) != 300 {
		t.Fatalf("builds = %d, want 300", len(plan.Builds))
	}
	// Selection is value-driven, so a few old subjects with deep conflict
	// chains may be outranked by younger, likelier builds (the paper defers
	// starvation/fairness to §10's future work on change reordering) — but
	// the bulk of the oldest subjects must be covered.
	seen := map[change.ID]bool{}
	for _, b := range plan.Builds {
		seen[b.Subject] = true
	}
	missing := 0
	for i := 0; i < 100; i++ {
		if !seen[pending[i].ID] {
			missing++
		}
	}
	if missing > 40 {
		t.Fatalf("%d of the oldest 100 subjects have no selected build", missing)
	}
}

// TestIndexFieldsConsistent: the index-form fields must mirror the ID lists.
func TestIndexFieldsConsistent(t *testing.T) {
	e := New(predict.Static{Success: 0.7, Conflict: 0.2})
	pending := mkChanges(5)
	plan := e.Plan(Request{Pending: pending, Budget: 0})
	for _, b := range plan.Builds {
		if pending[b.SubjectIdx].ID != b.Subject {
			t.Fatalf("subject index mismatch: %d vs %s", b.SubjectIdx, b.Subject)
		}
		if len(b.AssumedIdx) != len(b.Assumed) || len(b.AssumedRejectedIdx) != len(b.AssumedRejected) {
			t.Fatalf("index list length mismatch in %s", b.Key())
		}
		for k, idx := range b.AssumedIdx {
			if pending[idx].ID != b.Assumed[k] {
				t.Fatalf("assumed index mismatch in %s", b.Key())
			}
		}
		for k, idx := range b.AssumedRejectedIdx {
			if pending[idx].ID != b.AssumedRejected[k] {
				t.Fatalf("rejected index mismatch in %s", b.Key())
			}
		}
	}
}
