// Package speculation implements the paper's speculation engine (§4): given
// the pending changes, the conflict graph, and a probability model, it
// enumerates the speculation graph — one binary decision tree per pending
// change over that change's conflicting predecessors — and returns the
// builds most likely to be needed, in decreasing value order
// (V = Benefit·P_needed, §4.2.1).
//
// The math follows §4.2 exactly on chains:
//
//	P_needed(B_1)     = 1                          (Eq. before 1)
//	P_needed(B_1.2)   = P_succ(C1)                 (Eq. 2)
//	P_needed(B_2)     = 1 − P_succ(C1)             (Eq. 2)
//	P_needed(B_1.2.3) = P_succ(C1)·(P_succ(C2) − P_conf(C1,C2))   (Eq. 5)
//
// and generalizes to the speculation graph of §5: a build for subject C_k
// fixes an assumption (commit or reject) for each conflicting predecessor in
// D_k; the probability of a predecessor committing is evaluated *in context*
// — predecessors assumed rejected contribute no conflict mass, predecessors
// assumed committed contribute their full P_conf, and conflicting changes
// outside D_k contribute expected conflict P_conf·P_commit.
//
// Enumeration is lazy greedy best-first (§7.1): a global max-heap of partial
// assignments, expanded most-probable-first, so the engine never materializes
// the 2^n-node graph; space is O(n + budget). Partial assignments are
// bitmasks over the subject's branching predecessors, keeping node expansion
// allocation-free.
package speculation

import (
	"container/heap"
	"sort"
	"strings"

	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/predict"
)

// DefaultMaxSpecDepth bounds how many conflicting predecessors a single
// subject branches over; beyond it, predecessors are fixed to their most
// likely outcome instead of doubling the tree.
const DefaultMaxSpecDepth = 16

// maxBranchBits is the hard ceiling on branching (bitmask width).
const maxBranchBits = 30

// defaultMaxExpansions bounds total best-first pops per Plan call when the
// caller sets no budget.
const defaultMaxExpansions = 4096

// minSkipAssumptions protects decision-imminent builds from SkipThreshold:
// a node is only skippable once it carries at least this many assumptions.
// One-step hedges (B_2 in §4.2 — the build that becomes decisive the moment
// its single predecessor fails) always stay warm, so a wrong skip's restart
// never lands on the next decision's critical path; the waste skipping
// targets sits in deep speculation chains anyway.
const minSkipAssumptions = 2

// Build is one node of the speculation graph: build steps for
// H ⊕ (Assumed…) ⊕ Subject, whose success or failure decides Subject's fate
// under the assumption that every change in Assumed commits and every change
// in AssumedRejected is rejected.
type Build struct {
	Subject change.ID
	// Assumed are the conflicting predecessors speculated to commit, in
	// submission order.
	Assumed []change.ID
	// AssumedRejected are the remaining conflicting predecessors, speculated
	// to be rejected.
	AssumedRejected []change.ID
	// Changes is Assumed followed by Subject: the patches the build applies
	// on top of HEAD, in submission order.
	Changes []change.ID
	// PNeeded is the probability this build's result will be used (§4.2.1).
	PNeeded float64
	// Value is PNeeded weighted by the subject's Benefit (V = B·P_needed,
	// §4.2.1); the plan is ordered by Value.
	Value float64

	// Index forms of the above (positions in Request.Pending), for callers
	// that work with indices.
	SubjectIdx         int
	AssumedIdx         []int
	AssumedRejectedIdx []int
}

// Key returns a canonical identifier for the build: the applied change IDs
// joined with '+', with rejected assumptions appended after '!'. Two builds
// with equal keys are interchangeable.
func (b Build) Key() string {
	var sb strings.Builder
	for i, id := range b.Changes {
		if i > 0 {
			sb.WriteByte('+')
		}
		sb.WriteString(string(id))
	}
	if len(b.AssumedRejected) > 0 {
		sb.WriteByte('!')
		for i, id := range b.AssumedRejected {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(string(id))
		}
	}
	return sb.String()
}

// Engine computes speculation plans.
type Engine struct {
	// Predictor supplies P_succ and P_conf (trained model, oracle, or
	// constant for Speculate-all).
	Predictor predict.Predictor
	// MaxSpecDepth caps branching per subject (DefaultMaxSpecDepth if 0).
	MaxSpecDepth int
	// SkipThreshold, when in (0, 1], gates the speculation tree by the
	// predictor, in two symmetric ways sharing the one threshold τ
	// (DESIGN.md §4j):
	//
	//  1. A predecessor whose in-context commit probability q ≥ τ is not
	//     branched on — only the assume-commit child is explored (at its
	//     honest probability q), and the reject-branch hedge builds are
	//     never planned.
	//  2. A node whose P_needed has decayed to ≤ 1−τ is not built and not
	//     expanded: the predictor is at least τ-confident the result would
	//     never be used. P_needed is monotone non-increasing along the
	//     expansion, so dropping the node drops no viable descendant.
	//
	// Both trade fleet compute for a restart in the unlikely case: a wrong
	// skip leaves no hedge build warm, but the always-run decisive build
	// (P_needed = 1, never skipped) still gates every commit, so greenness
	// is unaffected. Zero disables skipping.
	SkipThreshold float64
}

// New creates an Engine with the given predictor.
func New(p predict.Predictor) *Engine { return &Engine{Predictor: p} }

// Request is the input to Plan.
type Request struct {
	// Pending changes in submission order.
	Pending []*change.Change
	// Conflicts is the conflict graph over Pending (and possibly more). A
	// nil graph means "assume every pair conflicts" (§4's speculation tree),
	// unless Preds is supplied.
	Conflicts *conflict.Graph
	// Preds, if non-nil, overrides Conflicts: Preds[i] lists the positions
	// (into Pending) of the conflicting predecessors of Pending[i], in
	// ascending order. This avoids graph construction in hot paths.
	Preds [][]int
	// Budget is the maximum number of builds to return; <= 0 means
	// unlimited (bounded internally by a safety cap).
	Budget int
	// Weights, if non-nil, is parallel to Pending: a scheduling weight
	// (internal/sched — priority class × deadline urgency) multiplied into
	// each change's benefit B, so node values V = B·P_needed order builds
	// by *weighted* expected commits. Nil means all 1 — the unweighted
	// engine, bit-for-bit.
	Weights []float64
	// NoSkip, if non-nil, is parallel to Pending: subjects exempt from
	// SkipThreshold τ-gating (neither floor-drop nor branch-skip prune
	// their trees). The sched layer sets it for the P0 hotfix lane, whose
	// modal path must keep every hedge — a wrong skip there costs a
	// restart exactly when turnaround matters most.
	NoSkip []bool
}

// Plan is the prioritized output of the engine.
type Plan struct {
	// Builds in decreasing Value order (ties: earlier subject first).
	Builds []Build
	// PCommit is each pending change's unconditional commit-probability
	// estimate (used by the planner for preemption and batching decisions).
	PCommit map[change.ID]float64
	// PCommitIdx is PCommit indexed by position in Request.Pending.
	PCommitIdx []float64
	// BranchesSkipped counts predecessor branch points collapsed by
	// Engine.SkipThreshold: reject-subtrees that were never explored because
	// the predictor was confident enough the predecessor commits.
	BranchesSkipped int
	// BuildsSkipped counts nodes dropped by Engine.SkipThreshold because
	// their P_needed decayed to ≤ 1−τ: builds the predictor was confident
	// enough would never be used, so they were not planned at all.
	BuildsSkipped int
}

// planner is the per-Plan working state.
type planner struct {
	e       *Engine
	pending []*change.Change
	preds   [][]int     // conflicting predecessor positions per change
	pSucc   []float64   // P_succ per change
	pCommit []float64   // global commit-probability estimate per change
	benefit []float64   // per-change benefit B (default 1), §4.2.1
	confRow [][]float64 // confRow[i][t] = P_conf(preds[i][t], i), dense cache
	conf    func(i, j int) float64
}

// Plan enumerates the speculation graph best-first and returns up to Budget
// builds. See the package comment for the math.
func (e *Engine) Plan(req Request) Plan {
	depth := e.MaxSpecDepth
	if depth <= 0 {
		depth = DefaultMaxSpecDepth
	}
	if depth > maxBranchBits {
		depth = maxBranchBits
	}
	budget := req.Budget
	if budget <= 0 {
		budget = defaultMaxExpansions
	}
	// Each emitted build needs up to depth+1 pops along its path; give the
	// search room for that plus slack, with a floor for small budgets.
	maxPops := budget * (depth + 2)
	if maxPops < defaultMaxExpansions {
		maxPops = defaultMaxExpansions
	}

	n := len(req.Pending)
	plan := Plan{PCommit: make(map[change.ID]float64, n)}
	if n == 0 {
		return plan
	}

	p := &planner{e: e, pending: req.Pending}
	p.conf = func(i, j int) float64 {
		return clamp01(e.Predictor.PredictConflict(req.Pending[i], req.Pending[j]))
	}

	// Conflicting predecessors per change, ascending positions.
	switch {
	case req.Preds != nil:
		p.preds = req.Preds
	case req.Conflicts != nil:
		order := make(map[change.ID]int, n)
		for i, c := range req.Pending {
			order[c.ID] = i
		}
		p.preds = make([][]int, n)
		for i, c := range req.Pending {
			for _, pr := range req.Conflicts.ConflictingPredecessors(c.ID) {
				if pi, ok := order[pr]; ok && pi < i {
					p.preds[i] = append(p.preds[i], pi)
				}
			}
			sort.Ints(p.preds[i])
		}
	default:
		p.preds = make([][]int, n)
		for i := range req.Pending {
			p.preds[i] = make([]int, i)
			for j := 0; j < i; j++ {
				p.preds[i][j] = j
			}
		}
	}

	// Dense per-plan conflict cache: the best-first expansion reads these
	// values millions of times, so one predictor call per (pred, change)
	// pair up front keeps the hot loop map-free.
	p.confRow = make([][]float64, n)
	for i := range req.Pending {
		row := make([]float64, len(p.preds[i]))
		for t, j := range p.preds[i] {
			row[t] = p.conf(j, i)
		}
		p.confRow[i] = row
	}

	// Global P_commit in submission order:
	// P_commit(k) = clamp(P_succ(k) − Σ_{j∈D_k} P_conf(j,k)·P_commit(j)).
	p.pSucc = make([]float64, n)
	p.pCommit = make([]float64, n)
	for i, c := range req.Pending {
		p.pSucc[i] = clamp01(e.Predictor.PredictSuccess(c))
		pc := p.pSucc[i]
		for t, j := range p.preds[i] {
			pc -= p.confRow[i][t] * p.pCommit[j]
		}
		p.pCommit[i] = clamp01(pc)
	}
	plan.PCommitIdx = p.pCommit
	for i, c := range req.Pending {
		plan.PCommit[c.ID] = p.pCommit[i]
	}

	// Per-change benefit weights (default 1), scaled by the scheduler's
	// priority/deadline weight when one is supplied. Weighted requests get
	// priority inheritance: a change's decision is gated by its pending
	// conflicting predecessors, so each predecessor inherits the maximum
	// weight (and τ-gating exemption) of the changes it blocks,
	// transitively. Without this a hotfix's own assumption subtree would
	// crowd the entire budget while the predecessor builds needed to resolve
	// it never rank high enough to be planned — a livelock, not a priority.
	weights, skipExempt := req.Weights, req.NoSkip
	if weights != nil {
		weights = append([]float64(nil), weights...)
		if skipExempt != nil {
			skipExempt = append([]bool(nil), skipExempt...)
		}
		// Inherited weight decays by half per hop: direct predecessors of a
		// hotfix must outrank ordinary work, but in a dense conflict graph
		// full transitive inheritance would spread the top weight over most
		// of the backlog and erase the differentiation it exists to create.
		// The decay is floored at parity (1): a predecessor gating
		// normal-or-better work must itself plan at normal priority, or a
		// down-weighted bulk change at the bottom of a chain starves behind
		// an endless stream of fresh normal roots — and the whole chain
		// above it with it.
		for i := n - 1; i >= 0; i-- {
			for _, j := range p.preds[i] {
				w := weights[i] / 2
				if w < 1 && weights[i] >= 1 {
					w = 1
				}
				if w > weights[j] {
					weights[j] = w
				}
				if skipExempt != nil && skipExempt[i] {
					skipExempt[j] = true
				}
			}
		}
	}
	p.benefit = make([]float64, n)
	for i, c := range req.Pending {
		p.benefit[i] = 1
		if c.Benefit > 0 {
			p.benefit[i] = c.Benefit
		}
		if weights != nil {
			p.benefit[i] *= weights[i]
		}
	}
	noSkip := func(subject int) bool {
		return skipExempt != nil && skipExempt[subject]
	}

	// Per-subject branch sets: the most recent `depth` conflicting
	// predecessors; older ones are fixed to their argmax outcome.
	branch := make([][]int, n)
	fixed := make([][]int, n)
	for i := range req.Pending {
		b := p.preds[i]
		if len(b) > depth {
			fixed[i] = b[:len(b)-depth]
			b = b[len(b)-depth:]
		}
		branch[i] = b
	}

	// Best-first enumeration over bitmask nodes. A root's probability is
	// discounted by its fixed (beyond-depth) predecessors up front: each is
	// pinned to its argmax outcome, which the build's result needs to come
	// true, so P_needed starts at the product of those outcome probabilities
	// rather than a flat 1 (§4.2 applies to every assumption, branched or
	// fixed).
	h := &nodeHeap{}
	for i := range req.Pending {
		prob := 1.0
		for _, f := range fixed[i] {
			if p.pCommit[f] >= 0.5 {
				prob *= p.pCommit[f]
			} else {
				prob *= 1 - p.pCommit[f]
			}
		}
		h.push(node{subject: i, modal: true, prob: prob, value: prob * p.benefit[i]})
	}
	heap.Init(h)

	// With skipping enabled, nodes whose P_needed decays to ≤ 1−τ are
	// dropped: the predictor is ≥τ confident their result would be wasted.
	floor := 0.0
	if e.SkipThreshold > 0 {
		floor = 1 - e.SkipThreshold
	}

	var plannedSubject []bool
	if weights != nil {
		plannedSubject = make([]bool, n)
	}

	pops := 0
	for h.Len() > 0 && len(plan.Builds) < budget && pops < maxPops {
		nd := heap.Pop(h).(node)
		pops++
		if nd.value <= 0 {
			// Max-heap: every remaining node is zero-value too. A build whose
			// result can never be needed is pure waste (§4.2.1).
			break
		}
		if floor > 0 && nd.prob <= floor && !nd.modal && !noSkip(nd.subject) &&
			int(nd.depth) >= minSkipAssumptions {
			// P_needed is monotone non-increasing along expansion, so no
			// descendant of this node is viable either. Two exemptions keep
			// wrong skips off the decision critical path: shallow nodes
			// (minSkipAssumptions — the head-of-queue decisive build and
			// one-step hedges are always planned) and the modal path (a
			// deep conflict cluster keeps one warm build per member in the
			// most likely world, preserving the pipelining that lets the
			// cluster commit back-to-back).
			plan.BuildsSkipped++
			continue
		}
		br := branch[nd.subject]
		if int(nd.depth) == len(br) {
			plan.Builds = append(plan.Builds, p.finishBuild(nd, branch[nd.subject], fixed[nd.subject]))
			if plannedSubject != nil {
				plannedSubject[nd.subject] = true
			}
			continue
		}
		// Branch on predecessor br[nd.depth]. Its in-context commit
		// probability: conflicts with already assumed-committed predecessors
		// count fully; assumed-rejected count zero; everything else counts
		// at expected value (P_conf·P_commit).
		pid := br[nd.depth]
		q := p.contextCommitProb(pid, nd, br)
		b := p.benefit[nd.subject]
		commitChild := node{
			subject: nd.subject,
			depth:   nd.depth + 1,
			mask:    nd.mask | (1 << uint(nd.depth)),
			modal:   nd.modal && q >= 0.5,
			prob:    nd.prob * q,
			value:   nd.prob * q * b,
		}
		if e.SkipThreshold > 0 && q >= e.SkipThreshold && !noSkip(nd.subject) &&
			int(nd.depth)+1 >= minSkipAssumptions {
			// Predictor-gated skip: the predecessor is near-certain to
			// commit, so the reject-subtree's hedge builds are not worth
			// their compute. The commit child keeps its honest probability
			// q — the plan does not pretend the skip is free. The depth
			// guard keeps the first-level reject hedge (B_2): only deeper
			// reject-subtrees are collapsed.
			heap.Push(h, commitChild)
			plan.BranchesSkipped++
			continue
		}
		rejectChild := node{
			subject: nd.subject,
			depth:   nd.depth + 1,
			mask:    nd.mask,
			modal:   nd.modal && q < 0.5,
			prob:    nd.prob * (1 - q),
			value:   nd.prob * (1 - q) * b,
		}
		heap.Push(h, commitChild)
		heap.Push(h, rejectChild)
	}

	// Liveness under weighting: skewed weights can fill the entire budget
	// with one subtree's builds — all of which the caller may already have
	// finished — while the assumption-free builds that actually decide the
	// bottoms of the pending chains never rank. Every decision chain bottoms
	// out at a change with no pending predecessors, so appending those root
	// builds past the budget guarantees the caller always has a decisive
	// build to start. The unweighted value function cannot produce this
	// starvation (P_needed decay interleaves subjects), so the unweighted
	// plan is left bit-for-bit unchanged.
	if weights != nil {
		for i := range req.Pending {
			if len(p.preds[i]) == 0 && !plannedSubject[i] {
				root := node{subject: i, modal: true, prob: 1, value: p.benefit[i]}
				plan.Builds = append(plan.Builds, p.finishBuild(root, nil, nil))
			}
		}
	}
	return plan
}

// contextCommitProb evaluates the probability that predecessor pid commits,
// conditioned on the assumptions already made along the node's path (the
// first nd.depth entries of br, committed iff the corresponding mask bit is
// set). Only pid's conflicting predecessors contribute conflict mass.
func (p *planner) contextCommitProb(pid int, nd node, br []int) float64 {
	q := p.pSucc[pid]
	for t, other := range p.preds[pid] {
		// Find other's decision along the path, if branched already.
		status := 0 // 0: outside/undecided, 1: assumed committed, 2: assumed rejected
		for d := 0; d < int(nd.depth); d++ {
			if br[d] == other {
				if nd.mask&(1<<uint(d)) != 0 {
					status = 1
				} else {
					status = 2
				}
				break
			}
		}
		switch status {
		case 1:
			q -= p.confRow[pid][t]
		case 2:
			// no conflict mass: the other change never lands
		default:
			q -= p.confRow[pid][t] * p.pCommit[other]
		}
	}
	return clamp01(q)
}

// finishBuild materializes a completed node into a Build.
func (p *planner) finishBuild(nd node, br, fx []int) Build {
	var assumedIdx, rejectedIdx []int
	for d := 0; d < int(nd.depth); d++ {
		if nd.mask&(1<<uint(d)) != 0 {
			assumedIdx = append(assumedIdx, br[d])
		} else {
			rejectedIdx = append(rejectedIdx, br[d])
		}
	}
	// Fixed (beyond-depth) predecessors take their most likely outcome.
	for _, f := range fx {
		if p.pCommit[f] >= 0.5 {
			assumedIdx = append(assumedIdx, f)
		} else {
			rejectedIdx = append(rejectedIdx, f)
		}
	}
	sort.Ints(assumedIdx)
	sort.Ints(rejectedIdx)
	b := Build{
		Subject:            p.pending[nd.subject].ID,
		SubjectIdx:         nd.subject,
		AssumedIdx:         assumedIdx,
		AssumedRejectedIdx: rejectedIdx,
		PNeeded:            nd.prob,
		Value:              nd.value,
	}
	for _, i := range assumedIdx {
		b.Assumed = append(b.Assumed, p.pending[i].ID)
		b.Changes = append(b.Changes, p.pending[i].ID)
	}
	b.Changes = append(b.Changes, b.Subject)
	for _, i := range rejectedIdx {
		b.AssumedRejected = append(b.AssumedRejected, p.pending[i].ID)
	}
	return b
}

// node is a partial assignment in the best-first search: the first `depth`
// branching predecessors of `subject` are decided by `mask` bits. value is
// prob weighted by the subject's benefit and drives the heap order. modal
// marks the path that takes every predecessor's argmax outcome — the
// subject's single most likely decisive context, which SkipThreshold never
// drops no matter how small its absolute probability gets.
type node struct {
	subject int
	depth   uint8
	mask    uint32
	modal   bool
	prob    float64
	value   float64
}

// nodeHeap is a max-heap on node probability; ties prefer earlier subjects
// (fairness: older changes first) and then shallower nodes.
type nodeHeap []node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].value != h[j].value {
		return h[i].value > h[j].value
	}
	if h[i].subject != h[j].subject {
		return h[i].subject < h[j].subject
	}
	return h[i].depth < h[j].depth
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// push appends without sifting (callers heap.Init afterwards).
func (h *nodeHeap) push(n node) { *h = append(*h, n) }

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
