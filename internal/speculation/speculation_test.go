package speculation

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/predict"
	"mastergreen/internal/repo"
)

// mkChanges builds n trivial pending changes c1..cn.
func mkChanges(n int) []*change.Change {
	out := make([]*change.Change, n)
	for i := range out {
		out[i] = &change.Change{
			ID: change.ID(fmt.Sprintf("c%d", i+1)),
			Patch: repo.Patch{Changes: []repo.FileChange{
				{Path: fmt.Sprintf("f%d", i+1), Op: repo.OpCreate, NewContent: "x"},
			}},
			BuildSteps: change.DefaultBuildSteps(),
		}
	}
	return out
}

// tablePredictor returns fixed per-change success and per-pair conflict
// probabilities.
type tablePredictor struct {
	succ map[change.ID]float64
	conf map[string]float64
}

func (t tablePredictor) PredictSuccess(c *change.Change) float64 { return t.succ[c.ID] }
func (t tablePredictor) PredictConflict(a, b *change.Change) float64 {
	k := string(a.ID) + "|" + string(b.ID)
	if a.ID > b.ID {
		k = string(b.ID) + "|" + string(a.ID)
	}
	return t.conf[k]
}

func findBuild(p Plan, key string) (Build, bool) {
	for _, b := range p.Builds {
		if b.Key() == key {
			return b, true
		}
	}
	return Build{}, false
}

func TestEmptyPlan(t *testing.T) {
	e := New(predict.Static{Success: 0.5, Conflict: 0.5})
	p := e.Plan(Request{})
	if len(p.Builds) != 0 || len(p.PCommit) != 0 {
		t.Fatalf("nonempty plan: %+v", p)
	}
}

func TestSingleChange(t *testing.T) {
	e := New(predict.Static{Success: 0.7, Conflict: 0.5})
	p := e.Plan(Request{Pending: mkChanges(1)})
	if len(p.Builds) != 1 {
		t.Fatalf("builds = %d", len(p.Builds))
	}
	b := p.Builds[0]
	if b.Subject != "c1" || len(b.Assumed) != 0 || b.PNeeded != 1 {
		t.Fatalf("root build = %+v", b)
	}
	if b.Key() != "c1" {
		t.Fatalf("key = %q", b.Key())
	}
}

// TestEquations1to5 verifies the exact chain math of §4.2 for three fully
// conflicting changes.
func TestEquations1to5(t *testing.T) {
	p1, p2, p3 := 0.9, 0.8, 0.7
	c12, c13, c23 := 0.1, 0.15, 0.2
	pred := tablePredictor{
		succ: map[change.ID]float64{"c1": p1, "c2": p2, "c3": p3},
		conf: map[string]float64{"c1|c2": c12, "c1|c3": c13, "c2|c3": c23},
	}
	e := New(pred)
	// No conflict graph: everything conflicts (the §4 tree).
	plan := e.Plan(Request{Pending: mkChanges(3)})

	want := map[string]float64{
		"c1": 1,
		// Eq. 2
		"c1+c2": p1,
		"c2!c1": 1 - p1,
		// Eq. 5 and the remaining leaves of Fig. 5
		"c1+c2+c3": p1 * (p2 - c12),
		"c1+c3!c2": p1 * (1 - (p2 - c12)),
		"c2+c3!c1": (1 - p1) * p2,
		"c3!c1,c2": (1 - p1) * (1 - p2),
	}
	if len(plan.Builds) != len(want) {
		for _, b := range plan.Builds {
			t.Logf("build %s p=%.4f", b.Key(), b.PNeeded)
		}
		t.Fatalf("got %d builds, want %d", len(plan.Builds), len(want))
	}
	for key, w := range want {
		b, ok := findBuild(plan, key)
		if !ok {
			t.Errorf("missing build %q", key)
			continue
		}
		if math.Abs(b.PNeeded-w) > 1e-9 {
			t.Errorf("P_needed(%s) = %v, want %v", key, b.PNeeded, w)
		}
	}
	// PCommit(C2) is the unconditional commit probability p2 − c12·p1.
	if got, w := plan.PCommit["c2"], p2-c12*p1; math.Abs(got-w) > 1e-9 {
		t.Errorf("PCommit(c2) = %v, want %v", got, w)
	}
}

func TestPlanSortedByPNeeded(t *testing.T) {
	e := New(predict.Static{Success: 0.8, Conflict: 0.1})
	plan := e.Plan(Request{Pending: mkChanges(5)})
	for i := 1; i < len(plan.Builds); i++ {
		if plan.Builds[i].PNeeded > plan.Builds[i-1].PNeeded+1e-12 {
			t.Fatalf("not sorted at %d: %v > %v", i,
				plan.Builds[i].PNeeded, plan.Builds[i-1].PNeeded)
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	e := New(predict.Static{Success: 0.5, Conflict: 0.5})
	plan := e.Plan(Request{Pending: mkChanges(8), Budget: 5})
	if len(plan.Builds) != 5 {
		t.Fatalf("builds = %d, want 5", len(plan.Builds))
	}
	// Highest-value builds come first; the root build is always there.
	if plan.Builds[0].PNeeded != 1 {
		t.Fatalf("first build P = %v", plan.Builds[0].PNeeded)
	}
}

// TestFig6IndependentChanges reproduces Fig. 6: C1 ⊥ C2, both conflict with
// C3. C1 and C2 each get exactly one build; C3 speculates over both.
func TestFig6IndependentChanges(t *testing.T) {
	cg := conflict.NewGraph([]change.ID{"c1", "c2", "c3"})
	cg.AddEdge("c1", "c3")
	cg.AddEdge("c2", "c3")
	e := New(predict.Static{Success: 0.8, Conflict: 0.1})
	plan := e.Plan(Request{Pending: mkChanges(3), Conflicts: cg})

	var c1Builds, c2Builds, c3Builds []Build
	for _, b := range plan.Builds {
		switch b.Subject {
		case "c1":
			c1Builds = append(c1Builds, b)
		case "c2":
			c2Builds = append(c2Builds, b)
		case "c3":
			c3Builds = append(c3Builds, b)
		}
	}
	if len(c1Builds) != 1 || len(c1Builds) != 1 {
		t.Fatalf("c1 builds = %d", len(c1Builds))
	}
	if len(c2Builds) != 1 || c2Builds[0].PNeeded != 1 {
		t.Fatalf("c2 should have one always-needed build, got %+v", c2Builds)
	}
	if len(c3Builds) != 4 {
		t.Fatalf("c3 builds = %d, want 4 (Fig. 6)", len(c3Builds))
	}
	keys := map[string]bool{}
	for _, b := range c3Builds {
		keys[b.Key()] = true
	}
	for _, want := range []string{"c3!c1,c2", "c1+c3!c2", "c2+c3!c1", "c1+c2+c3"} {
		if !keys[want] {
			t.Errorf("missing c3 build %q (have %v)", want, keys)
		}
	}
}

// TestFig7 reproduces Fig. 7: C1 conflicts with C2 and C3; C2 ⊥ C3. Total
// builds drop from 7 (full tree) to 5.
func TestFig7(t *testing.T) {
	cg := conflict.NewGraph([]change.ID{"c1", "c2", "c3"})
	cg.AddEdge("c1", "c2")
	cg.AddEdge("c1", "c3")
	e := New(predict.Static{Success: 0.8, Conflict: 0.1})
	plan := e.Plan(Request{Pending: mkChanges(3), Conflicts: cg})
	if len(plan.Builds) != 5 {
		for _, b := range plan.Builds {
			t.Logf("%s p=%.3f", b.Key(), b.PNeeded)
		}
		t.Fatalf("builds = %d, want 5 (Fig. 7)", len(plan.Builds))
	}
	for _, want := range []string{"c1", "c1+c2", "c2!c1", "c1+c3", "c3!c1"} {
		if _, ok := findBuild(plan, want); !ok {
			t.Errorf("missing build %q", want)
		}
	}
}

func TestHighSuccessPrefersDeepSpeculation(t *testing.T) {
	// With P_succ near 1, the most valuable builds are the "all commit"
	// chain, so a budget of n should yield exactly the optimistic path.
	e := New(predict.Static{Success: 0.99, Conflict: 0.01})
	n := 6
	plan := e.Plan(Request{Pending: mkChanges(n), Budget: n})
	if len(plan.Builds) != n {
		t.Fatalf("builds = %d", len(plan.Builds))
	}
	for i, b := range plan.Builds {
		if len(b.Changes) != i+1 {
			t.Fatalf("build %d = %s, want chain prefix of length %d", i, b.Key(), i+1)
		}
	}
}

func TestLowSuccessPrefersIsolatedBuilds(t *testing.T) {
	// With P_succ near 0, each change's most valuable build assumes all
	// predecessors fail: singleton builds.
	e := New(predict.Static{Success: 0.05, Conflict: 0.01})
	n := 5
	plan := e.Plan(Request{Pending: mkChanges(n), Budget: n})
	for _, b := range plan.Builds {
		if len(b.Changes) != 1 {
			t.Fatalf("expected singleton builds, got %s", b.Key())
		}
	}
}

func TestMaxSpecDepthCapsBranching(t *testing.T) {
	n := 20
	e := &Engine{Predictor: predict.Static{Success: 0.9, Conflict: 0.05}, MaxSpecDepth: 3}
	plan := e.Plan(Request{Pending: mkChanges(n), Budget: 0})
	// The last change has 19 conflicting predecessors but only 3 branchable:
	// at most 2^3 = 8 distinct builds for it.
	count := 0
	for _, b := range plan.Builds {
		if b.Subject == change.ID(fmt.Sprintf("c%d", n)) {
			count++
		}
	}
	if count > 8 {
		t.Fatalf("subject c%d has %d builds, want <= 8", n, count)
	}
	// Fixed predecessors still appear in the build's assumption sets.
	for _, b := range plan.Builds {
		if b.Subject == change.ID(fmt.Sprintf("c%d", n)) {
			if len(b.Assumed)+len(b.AssumedRejected) != n-1 {
				t.Fatalf("assumptions incomplete: %s (%d+%d)", b.Key(), len(b.Assumed), len(b.AssumedRejected))
			}
		}
	}
}

func TestOraclePlan(t *testing.T) {
	// Oracle: c2 fails, others succeed, no conflicts. The plan's top builds
	// should include c1's build, c3's build assuming c1 commits and c2
	// rejected — i.e. exactly the "needed" builds rank first.
	oracle := predict.Oracle{
		Success:  func(id change.ID) bool { return id != "c2" },
		Conflict: func(a, b change.ID) bool { return false },
	}
	// All-conflicting tree (nil graph) with oracle probabilities.
	e := New(oracle)
	plan := e.Plan(Request{Pending: mkChanges(3), Budget: 3})
	wantTop := map[string]bool{"c1": true, "c1+c2": true, "c1+c3!c2": true}
	for _, b := range plan.Builds {
		if !wantTop[b.Key()] {
			t.Fatalf("unexpected top-3 build %s (P=%v)", b.Key(), b.PNeeded)
		}
	}
}

func TestBuildKeyDisambiguatesAssumptions(t *testing.T) {
	b1 := Build{Subject: "c3", Changes: []change.ID{"c3"}, AssumedRejected: []change.ID{"c1", "c2"}}
	b2 := Build{Subject: "c3", Changes: []change.ID{"c3"}, AssumedRejected: []change.ID{"c1"}}
	if b1.Key() == b2.Key() {
		t.Fatal("keys must differ for different rejection assumptions")
	}
}

func TestPCommitMonotoneInConflictLoad(t *testing.T) {
	// More conflicting predecessors => lower commit probability for the last
	// change.
	pred := predict.Static{Success: 0.9, Conflict: 0.2}
	var last []float64
	for n := 1; n <= 5; n++ {
		e := New(pred)
		plan := e.Plan(Request{Pending: mkChanges(n)})
		last = append(last, plan.PCommit[change.ID(fmt.Sprintf("c%d", n))])
	}
	for i := 1; i < len(last); i++ {
		if last[i] >= last[i-1] {
			t.Fatalf("PCommit not decreasing: %v", last)
		}
	}
}

func TestDeterministicPlan(t *testing.T) {
	e := New(predict.Static{Success: 0.7, Conflict: 0.2})
	p1 := e.Plan(Request{Pending: mkChanges(6), Budget: 10})
	p2 := e.Plan(Request{Pending: mkChanges(6), Budget: 10})
	if len(p1.Builds) != len(p2.Builds) {
		t.Fatal("nondeterministic build count")
	}
	for i := range p1.Builds {
		if p1.Builds[i].Key() != p2.Builds[i].Key() {
			t.Fatalf("nondeterministic order at %d: %s vs %s",
				i, p1.Builds[i].Key(), p2.Builds[i].Key())
		}
	}
}

func TestNoDuplicateBuilds(t *testing.T) {
	// Conflict 0 keeps every leaf's probability positive (2^-depth), so the
	// full tree is enumerated: sum(2^i, i=0..6) = 127 leaves.
	e := New(predict.Static{Success: 0.5, Conflict: 0})
	plan := e.Plan(Request{Pending: mkChanges(7), Budget: 0})
	seen := map[string]bool{}
	for _, b := range plan.Builds {
		k := b.Key()
		if seen[k] {
			t.Fatalf("duplicate build %s", k)
		}
		seen[k] = true
	}
	if len(plan.Builds) != 127 {
		t.Fatalf("builds = %d, want 127", len(plan.Builds))
	}
}

func TestZeroValueBuildsPruned(t *testing.T) {
	// With P_conf = 1 between consecutive changes, deep chains have zero
	// probability and must not be emitted.
	e := New(predict.Static{Success: 0.5, Conflict: 1})
	plan := e.Plan(Request{Pending: mkChanges(4), Budget: 0})
	for _, b := range plan.Builds {
		if b.PNeeded <= 0 {
			t.Fatalf("zero-value build emitted: %s", b.Key())
		}
	}
}

func TestAssumedSetsOrdered(t *testing.T) {
	e := New(predict.Static{Success: 0.6, Conflict: 0.3})
	plan := e.Plan(Request{Pending: mkChanges(5), Budget: 0})
	for _, b := range plan.Builds {
		if !sort.SliceIsSorted(b.Changes, func(i, j int) bool {
			return b.Changes[i] < b.Changes[j] // c1<c2<... lexicographic == submission here
		}) {
			t.Fatalf("unsorted changes in %s", b.Key())
		}
		if b.Changes[len(b.Changes)-1] != b.Subject {
			t.Fatalf("subject not last in %s", b.Key())
		}
	}
}

// TestBenefitWeightedSelection: §4.2.1's value function V = B·P_needed —
// a high-benefit change (e.g. a security patch) outranks likelier builds.
func TestBenefitWeightedSelection(t *testing.T) {
	pending := mkChanges(4)
	pending[3].Benefit = 50 // the security patch, submitted last
	e := New(predict.Static{Success: 0.9, Conflict: 0.1})
	plan := e.Plan(Request{Pending: pending, Budget: 3})
	// Without weighting, c4's builds (3 assumptions deep) would rank behind
	// the c1/c2 chain; with B=50 its most likely build must be in the top 3.
	found := false
	for _, b := range plan.Builds {
		if b.Subject == "c4" {
			found = true
			if b.Value <= b.PNeeded {
				t.Fatalf("value not boosted: %v vs %v", b.Value, b.PNeeded)
			}
		}
	}
	if !found {
		t.Fatal("high-benefit change not prioritized")
	}
	// Plan remains value-sorted.
	for i := 1; i < len(plan.Builds); i++ {
		if plan.Builds[i].Value > plan.Builds[i-1].Value+1e-12 {
			t.Fatalf("not value-sorted at %d", i)
		}
	}
}

// TestDefaultBenefitKeepsProbabilityOrder: with no Benefit set, Value equals
// PNeeded and prior behavior is unchanged.
func TestDefaultBenefitKeepsProbabilityOrder(t *testing.T) {
	e := New(predict.Static{Success: 0.8, Conflict: 0.1})
	plan := e.Plan(Request{Pending: mkChanges(4), Budget: 0})
	for _, b := range plan.Builds {
		if math.Abs(b.Value-b.PNeeded) > 1e-12 {
			t.Fatalf("value %v != pneeded %v without benefits", b.Value, b.PNeeded)
		}
	}
}

// TestSkipThresholdPrunesRejectBranch: with a confident predictor and a
// threshold at or below its confidence, deep reject-branch hedge builds are
// never planned — but the one-step hedge (B_2 in §4.2) is protected, so a
// single surprise rejection still finds a warm build.
func TestSkipThresholdPrunesRejectBranch(t *testing.T) {
	e := New(predict.Static{Success: 0.95, Conflict: 0.2})
	e.SkipThreshold = 0.9
	p := e.Plan(Request{Pending: mkChanges(3)})
	if _, ok := findBuild(p, "c1"); !ok {
		t.Fatalf("plan lost the root build: %+v", p.Builds)
	}
	b, ok := findBuild(p, "c1+c2")
	if !ok {
		t.Fatalf("plan lost the commit-branch build: %+v", p.Builds)
	}
	// q = P_succ(c1) = 0.95.
	if math.Abs(b.PNeeded-0.95) > 1e-12 {
		t.Errorf("commit-branch PNeeded = %v, want 0.95 (honest q)", b.PNeeded)
	}
	// The one-step hedge survives: skipping never drops a build with fewer
	// than two assumptions.
	if _, ok := findBuild(p, "c2!c1"); !ok {
		t.Errorf("one-step hedge build missing despite protection: %+v", p.Builds)
	}
	// c3's reject-of-c1 subtree: c2's in-context commit probability there is
	// a confident 0.95 ≥ τ (no conflict mass from a change that never
	// lands), so the branch skip collapses the reject-reject corner
	// "c3!c1,c2"; the surviving commit child "c2+c3!c1" then carries
	// P_needed 0.05·0.95 ≤ 1−τ and the floor drops it too. The whole
	// low-probability subtree costs zero builds.
	if _, ok := findBuild(p, "c2+c3!c1"); ok {
		t.Errorf("low-P_needed build planned despite floor: %+v", p.Builds)
	}
	if _, ok := findBuild(p, "c3!c1,c2"); ok {
		t.Errorf("deep reject-branch hedge build was planned despite skip: %+v", p.Builds)
	}
	if p.BranchesSkipped != 1 {
		t.Errorf("BranchesSkipped = %d, want 1", p.BranchesSkipped)
	}
	if p.BuildsSkipped != 1 {
		t.Errorf("BuildsSkipped = %d, want 1", p.BuildsSkipped)
	}
}

// TestSkipThresholdNotMet: a threshold above the predictor's in-context
// confidence leaves the plan untouched.
func TestSkipThresholdNotMet(t *testing.T) {
	e := New(predict.Static{Success: 0.95, Conflict: 0.2})
	e.SkipThreshold = 0.96
	p := e.Plan(Request{Pending: mkChanges(2)})
	if _, ok := findBuild(p, "c2!c1"); !ok {
		t.Errorf("reject-branch build missing below threshold: %+v", p.Builds)
	}
	if p.BranchesSkipped != 0 {
		t.Errorf("BranchesSkipped = %d, want 0", p.BranchesSkipped)
	}
}

// TestSkipDisabledByDefault: a zero threshold disables skipping entirely —
// the plan is identical to the unconfigured engine's.
func TestSkipDisabledByDefault(t *testing.T) {
	base := New(predict.Static{Success: 0.99, Conflict: 0.1}).Plan(Request{Pending: mkChanges(3)})
	e := New(predict.Static{Success: 0.99, Conflict: 0.1})
	e.SkipThreshold = 0
	p := e.Plan(Request{Pending: mkChanges(3)})
	if len(p.Builds) != len(base.Builds) || p.BranchesSkipped != 0 {
		t.Fatalf("zero threshold changed the plan: %d builds (want %d), skipped %d",
			len(p.Builds), len(base.Builds), p.BranchesSkipped)
	}
	for i := range base.Builds {
		if p.Builds[i].Key() != base.Builds[i].Key() {
			t.Errorf("build %d: key %q, want %q", i, p.Builds[i].Key(), base.Builds[i].Key())
		}
	}
}

// TestSkipShrinksDeepPlan: on a conflict chain whose predictor stays
// confident at every depth, skipping collapses the exponential hedge
// frontier to the chain-prefix path plus the single protected one-step
// hedge — no build carries two or more rejected assumptions.
func TestSkipShrinksDeepPlan(t *testing.T) {
	pending := mkChanges(6)
	base := New(predict.Static{Success: 0.97, Conflict: 0.005}).Plan(Request{Pending: pending, Budget: 64})
	e := New(predict.Static{Success: 0.97, Conflict: 0.005})
	e.SkipThreshold = 0.9
	p := e.Plan(Request{Pending: pending, Budget: 64})
	// One chain-prefix build per subject plus c2's protected one-step hedge;
	// every deeper hedge is collapsed by the branch skip or dropped by the
	// P_needed floor.
	if len(p.Builds) != len(pending)+1 {
		t.Errorf("skip plan has %d builds, want %d (chain prefixes + one protected hedge)",
			len(p.Builds), len(pending)+1)
	}
	if len(p.Builds) >= len(base.Builds) {
		t.Errorf("skip plan has %d builds, base %d — want strictly fewer", len(p.Builds), len(base.Builds))
	}
	if p.BranchesSkipped == 0 {
		t.Error("BranchesSkipped = 0, want > 0")
	}
	if p.BuildsSkipped == 0 {
		t.Error("BuildsSkipped = 0, want > 0 (floor drops the deviation subtrees)")
	}
	for _, b := range p.Builds {
		if len(b.AssumedRejected) > 1 {
			t.Errorf("build %q carries %d rejected assumptions despite confident skip",
				b.Key(), len(b.AssumedRejected))
		}
	}
}
