package store

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"mastergreen/internal/change"
)

// buildHistory writes a journal with n records: submissions that are all
// decided except the last `livePending` ones — the shape of a long-running
// service's history.
func buildHistory(b *testing.B, path string, n, livePending int) {
	b.Helper()
	j, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	j.SyncEvery = 1 << 30 // bulk load; one sync on close
	subs := (n + 1) / 2
	for i := 0; i < subs; i++ {
		if err := j.AppendSubmit(mkChange(fmt.Sprintf("h-%06d", i))); err != nil {
			b.Fatal(err)
		}
	}
	decided := subs - livePending
	if decided < 0 {
		decided = 0
	}
	for i := 0; i < n-subs && i < decided; i++ {
		o := OutcomeRecord{ID: change.ID(fmt.Sprintf("h-%06d", i)), State: "committed",
			Commit: "c", At: time.Unix(int64(i), 0).UTC()}
		if err := j.AppendOutcome(o); err != nil {
			b.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
}

func benchRestart(b *testing.B, path string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := LoadState(path)
		if err != nil {
			b.Fatal(err)
		}
		pending, _ := PendingFromRecords(recs)
		_ = pending
	}
}

// BenchmarkReplayEmpty is the restart floor: loading a journal with no
// history at all.
func BenchmarkReplayEmpty(b *testing.B) {
	path := filepath.Join(b.TempDir(), "journal.jsonl")
	j, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	_ = j.Close()
	benchRestart(b, path)
}

// BenchmarkReplayLiveOnly is the restart floor for a service with live
// state: a journal holding exactly the live set (8 pending, 16 recent
// outcomes) and nothing else. Any restart must parse at least this much, so
// this — not the zero-state floor — is the fair baseline for the
// snapshotted restart below.
func BenchmarkReplayLiveOnly(b *testing.B) {
	path := filepath.Join(b.TempDir(), "journal.jsonl")
	buildHistory(b, path, 8+16+16, 8) // 20 submits, 12 decided; ~live-state-sized
	benchRestart(b, path)
}

// BenchmarkReplay100k is restart cost without snapshots: the full
// 100k-record history is parsed and folded on every boot.
func BenchmarkReplay100k(b *testing.B) {
	path := filepath.Join(b.TempDir(), "journal.jsonl")
	buildHistory(b, path, 100_000, 8)
	benchRestart(b, path)
}

// BenchmarkReplay100kSnapshotted is restart cost with snapshots: the same
// 100k-record history folded into a snapshot (8 live pending + a small
// outcome tail), which is all a boot replays. Two snapshots model the
// steady state of a periodic -snapshot-interval: the first folds the long
// tail (carrying its crash-window tombstones), the second — taken over the
// now-empty tail — converges to the live state alone. The headline
// comparison — snapshotted restart vs the empty-journal floor — is recorded
// in BENCH_serving.json.
func BenchmarkReplay100kSnapshotted(b *testing.B) {
	path := filepath.Join(b.TempDir(), "journal.jsonl")
	buildHistory(b, path, 100_000, 8)
	j, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := j.Snapshot("bench-head", 16, time.Unix(1, 0).UTC()); err != nil {
		b.Fatal(err)
	}
	if err := j.Snapshot("bench-head", 16, time.Unix(2, 0).UTC()); err != nil {
		b.Fatal(err)
	}
	_ = j.Close()
	benchRestart(b, path)
}

// BenchmarkJournalAppendSerial measures the durable append path with a
// single writer: one fsync per append, the group-commit floor.
func BenchmarkJournalAppendSerial(b *testing.B) {
	path := filepath.Join(b.TempDir(), "journal.jsonl")
	j, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	c := mkChange("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.AppendSubmit(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalAppendParallel measures group commit under contention:
// concurrent appenders coalesce into far fewer fsyncs than appends while
// every append still returns durable.
func BenchmarkJournalAppendParallel(b *testing.B) {
	path := filepath.Join(b.TempDir(), "journal.jsonl")
	j, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	c := mkChange("bench")
	b.ReportAllocs()
	// RunParallel defaults to GOMAXPROCS goroutines — on a single-core
	// runner that is one appender and group commit never engages; fsyncs
	// block in the kernel, not on the CPU, so force real contention.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := j.AppendSubmit(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(j.Syncs())/float64(b.N), "fsyncs/op")
}
