package store

import (
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"mastergreen/internal/change"
)

// TestReplayTornLineOnly: a journal holding nothing but a partial record (a
// crash during the very first append) replays as empty, not as an error.
func TestReplayTornLineOnly(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, []byte(`{"kind":"submit","sub`), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Replay(path)
	if err != nil {
		t.Fatalf("torn-only journal must replay clean: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("records = %d, want 0", len(recs))
	}
}

// TestReplayCorruptionReportsLineNumber: mid-file corruption must name the
// exact line, so the operator can inspect (and surgically repair) the
// journal.
func TestReplayCorruptionReportsLineNumber(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = j.AppendSubmit(mkChange("c1"))
	_ = j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.WriteString("NOT JSON\n")
	_ = f.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = j2.AppendSubmit(mkChange("c2"))
	_ = j2.Close()

	_, err = Replay(path)
	if err == nil {
		t.Fatal("mid-file corruption must be reported")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name the corrupt line (want \"line 2\")", err)
	}
}

// TestReplayAfterCompactRoundTrips: compaction must preserve undecided
// submissions bit-for-bit (full change content, not just IDs) and the kept
// outcome window verbatim, so a recovery after compaction resumes exactly
// where a recovery before compaction would have.
func TestReplayAfterCompactRoundTrips(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"a", "b", "c", "d", "e"}
	for _, id := range ids {
		if err := j.AppendSubmit(mkChange(id)); err != nil {
			t.Fatal(err)
		}
	}
	outs := []OutcomeRecord{
		{ID: "a", State: "committed", Commit: "commit-a", At: time.Unix(2000, 0).UTC()},
		{ID: "b", State: "rejected", Reason: "build failed at compile", At: time.Unix(2001, 0).UTC()},
		{ID: "c", State: "committed", Commit: "commit-c", At: time.Unix(2002, 0).UTC()},
	}
	for _, o := range outs {
		if err := j.AppendOutcome(o); err != nil {
			t.Fatal(err)
		}
	}
	_ = j.Close()

	before, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	pendingBefore, _ := PendingFromRecords(before)

	if err := Compact(path, 2); err != nil {
		t.Fatal(err)
	}
	after, err := Replay(path)
	if err != nil {
		t.Fatalf("replay after compaction: %v", err)
	}
	pendingAfter, outcomesAfter := PendingFromRecords(after)

	if !reflect.DeepEqual(pendingBefore, pendingAfter) {
		t.Fatalf("pending changes did not round-trip through compaction:\nbefore %+v\nafter  %+v",
			pendingBefore, pendingAfter)
	}
	wantPending := []change.ID{"d", "e"}
	for i, c := range pendingAfter {
		if c.ID != wantPending[i] {
			t.Fatalf("pending[%d] = %s, want %s", i, c.ID, wantPending[i])
		}
		// Spot-check content survived, not just identity.
		if len(c.Patch.Changes) != 2 || c.Patch.Changes[0].Path != "a.go" {
			t.Fatalf("pending[%d] patch content lost: %+v", i, c.Patch)
		}
		if c.Revision == nil || !c.Revision.TestPlan {
			t.Fatalf("pending[%d] revision content lost: %+v", i, c.Revision)
		}
	}
	if !reflect.DeepEqual(outcomesAfter, outs[1:]) {
		t.Fatalf("kept outcome window not verbatim:\ngot  %+v\nwant %+v", outcomesAfter, outs[1:])
	}

	// The compacted journal must still accept appends and replay clean.
	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j3.AppendSubmit(mkChange("f")); err != nil {
		t.Fatal(err)
	}
	_ = j3.Close()
	final, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	pendingFinal, _ := PendingFromRecords(final)
	if len(pendingFinal) != 3 || pendingFinal[2].ID != "f" {
		t.Fatalf("append after compaction lost: %+v", pendingFinal)
	}
}
