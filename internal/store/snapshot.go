// Journal snapshot/compaction: the mechanism that keeps restart replay time
// flat as history grows. A snapshot file holds the folded live state (the
// pending set plus a bounded outcome tail) under an integrity header; after a
// snapshot the live journal is truncated, so a restart replays
// snapshot + short tail instead of the full history.
//
// On-disk layout for a journal at PATH:
//
//	PATH            the live tail (records since the last snapshot)
//	PATH.snap       the current snapshot
//	PATH.snap.prev  the previous snapshot (fallback if .snap is torn)
//
// Snapshots are written to a temp file, fsynced, and renamed into place; the
// old snapshot is rotated to .snap.prev first. Every crash window is covered:
// a torn temp file is ignored, a missing .snap falls back to .snap.prev plus
// the untruncated tail, and a tail that briefly overlaps a fresh snapshot
// folds away through PendingFromRecords' first-record-wins dedup plus the
// outcome tombstones of foldForRewrite.
package store

import (
	"fmt"
	"os"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// SnapHead is the integrity header leading a snapshot file: a snapshot is
// valid only when it starts with a SnapHead whose Records count matches the
// number of records that follow. A torn or partially-written snapshot fails
// this check and the loader falls back to the previous snapshot.
type SnapHead struct {
	// Head is the mainline head commit at snapshot time (informational; the
	// repo itself is persisted separately).
	Head repo.CommitID `json:"head"`
	// Records is the number of records following this header.
	Records int `json:"records"`
	// At is the snapshot timestamp (injected by the caller's clock).
	At time.Time `json:"at"`
}

// SnapshotPath returns the current-snapshot path for a journal path.
func SnapshotPath(path string) string { return path + ".snap" }

func prevSnapshotPath(path string) string { return path + ".snap.prev" }

// errNoSnapshot distinguishes "no snapshot file" from a corrupt one.
var errNoSnapshot = fmt.Errorf("store: no snapshot")

// ReplaySnapshot reads and validates a snapshot file, returning its header
// and the records it folds. A missing, torn, or header-less file is an
// error; callers fall back to the previous snapshot or to no snapshot.
func ReplaySnapshot(path string) (SnapHead, []Record, error) {
	if _, err := os.Stat(path); err != nil {
		return SnapHead{}, nil, errNoSnapshot
	}
	recs, err := Replay(path)
	if err != nil {
		return SnapHead{}, nil, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	if len(recs) == 0 || recs[0].Kind != KindSnapHead || recs[0].Snap == nil {
		return SnapHead{}, nil, fmt.Errorf("store: snapshot %s: missing header", path)
	}
	head := *recs[0].Snap
	body := recs[1:]
	if len(body) != head.Records {
		return SnapHead{}, nil, fmt.Errorf("store: snapshot %s: torn (%d records, header says %d)",
			path, len(body), head.Records)
	}
	return head, body, nil
}

// LoadState replays a journal's full persisted state: the newest valid
// snapshot (current, else previous, else none) followed by the live tail.
// The returned records feed PendingFromRecords exactly like a plain replay.
func LoadState(path string) ([]Record, error) {
	var base []Record
	if _, recs, err := ReplaySnapshot(SnapshotPath(path)); err == nil {
		base = recs
	} else if _, recs, err := ReplaySnapshot(prevSnapshotPath(path)); err == nil {
		base = recs
	}
	tail, err := Replay(path)
	if err != nil {
		return nil, err
	}
	return append(base, tail...), nil
}

// writeSnapshotFile writes header + records to path, fsyncing before close.
func writeSnapshotFile(path string, head SnapHead, pending []*change.Change, outcomes []OutcomeRecord) error {
	j, err := Open(path)
	if err != nil {
		return err
	}
	j.SyncEvery = 1 << 30 // one final sync on close
	head.Records = len(pending) + len(outcomes)
	if err := j.Append(Record{Kind: KindSnapHead, Snap: &head}); err != nil {
		_ = j.Close()
		return err
	}
	for _, o := range outcomes {
		if err := j.AppendOutcome(o); err != nil {
			_ = j.Close()
			return err
		}
	}
	for _, c := range pending {
		if err := j.AppendSubmit(c); err != nil {
			_ = j.Close()
			return err
		}
	}
	return j.Close()
}

// Snapshot folds the journal's full persisted state (previous snapshot plus
// live tail) into a fresh snapshot and truncates the live journal, keeping
// restart replay time proportional to the live state instead of total
// history. head stamps the mainline head, keepOutcomes bounds the retained
// outcome tail, and at is the snapshot timestamp from the caller's clock.
// Appends block for the duration; the durable-before-ack contract holds
// throughout because the tail is fsynced before it is folded and the
// snapshot is fsynced before the tail is truncated.
func (j *Journal) Snapshot(head repo.CommitID, keepOutcomes int, at time.Time) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	for j.syncing {
		j.syncDone.Wait()
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: snapshot flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	j.syncs++
	j.syncSeq = j.writeSeq
	j.syncDone.Broadcast()

	recs, err := LoadState(j.path)
	if err != nil {
		return err
	}
	// Tombstones: the live tail survives until the truncation below, so any
	// change it holds a submit record for must keep its outcome in the
	// snapshot — otherwise a crash before truncation could resurrect it.
	tail, err := Replay(j.path)
	if err != nil {
		return err
	}
	pending, outcomes := foldForRewrite(recs, keepOutcomes, tail)

	tmp := j.path + ".snap.tmp"
	_ = os.Remove(tmp) // a crashed prior snapshot may have left a partial temp
	//lint:ignore lockorder writeSnapshotFile appends to a fresh temp-file journal it opens itself, never the locked receiver
	if err := writeSnapshotFile(tmp, SnapHead{Head: head, At: at}, pending, outcomes); err != nil {
		return err
	}
	snap := SnapshotPath(j.path)
	if _, err := os.Stat(snap); err == nil {
		if err := os.Rename(snap, prevSnapshotPath(j.path)); err != nil {
			return fmt.Errorf("store: snapshot rotate: %w", err)
		}
	}
	if err := os.Rename(tmp, snap); err != nil {
		return fmt.Errorf("store: snapshot install: %w", err)
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("store: snapshot truncate: %w", err)
	}
	j.w.Reset(j.f)
	j.appends = 0
	j.snapshots++
	return nil
}

// Snapshots returns how many snapshots this journal handle has taken.
func (j *Journal) Snapshots() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshots
}
