package store

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// TestSnapshotRoundTripsPendingSet: replay after a snapshot must recover the
// exact pending set — full change content, not just IDs — that a replay
// before the snapshot would have.
func TestSnapshotRoundTripsPendingSet(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		if err := j.AppendSubmit(mkChange(id)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"a", "c"} {
		if err := j.AppendOutcome(OutcomeRecord{ID: change.ID(id), State: "committed", Commit: repo.CommitID("x-" + id), At: time.Unix(2000, 0).UTC()}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	pendingBefore, _ := PendingFromRecords(before)

	if err := j.Snapshot("head-1", 10, time.Unix(3000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if n := j.Appends(); n != 0 {
		t.Fatalf("journal not truncated: %d appends recorded", n)
	}
	after, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	pendingAfter, outcomes := PendingFromRecords(after)
	if !reflect.DeepEqual(pendingBefore, pendingAfter) {
		t.Fatalf("pending set did not round-trip through snapshot:\nbefore %+v\nafter  %+v",
			pendingBefore, pendingAfter)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(outcomes))
	}

	// The journal keeps accepting appends, and the next load folds
	// snapshot + tail.
	if err := j.AppendSubmit(mkChange("f")); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendOutcome(OutcomeRecord{ID: "b", State: "rejected", Reason: "broke", At: time.Unix(4000, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()
	final, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	pendingFinal, _ := PendingFromRecords(final)
	want := []change.ID{"d", "e", "f"}
	if len(pendingFinal) != len(want) {
		t.Fatalf("pending after tail = %+v, want %v", pendingFinal, want)
	}
	for i, c := range pendingFinal {
		if c.ID != want[i] {
			t.Fatalf("pending[%d] = %s, want %s", i, c.ID, want[i])
		}
	}
	head, _, err := ReplaySnapshot(SnapshotPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if head.Head != "head-1" || !head.At.Equal(time.Unix(3000, 0).UTC()) {
		t.Fatalf("snapshot header = %+v", head)
	}
}

// TestSnapshotTornFallsBackToPrevious: a snapshot torn mid-write (fewer
// records than its header promises) must be rejected, and the loader must
// fall back to the previous snapshot plus the live tail with no state loss.
func TestSnapshotTornFallsBackToPrevious(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := j.AppendSubmit(mkChange(id)); err != nil {
			t.Fatal(err)
		}
	}
	// First snapshot: a b c pending.
	if err := j.Snapshot("h1", 10, time.Unix(1000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	// Tail after the first snapshot: d submitted.
	if err := j.AppendSubmit(mkChange("d")); err != nil {
		t.Fatal(err)
	}
	// Second snapshot rotates the first to .snap.prev.
	if err := j.Snapshot("h2", 10, time.Unix(2000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	// Tail after the second snapshot: e submitted.
	if err := j.AppendSubmit(mkChange("e")); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()

	// Tear the current snapshot mid-write: drop its final record.
	snap := SnapshotPath(path)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(data) - 2
	for cut > 0 && data[cut] != '\n' {
		cut--
	}
	if err := os.WriteFile(snap, data[:cut+1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplaySnapshot(snap); err == nil {
		t.Fatal("torn snapshot must fail validation")
	}

	// Fallback: .snap.prev (a b c) + live tail (e). Only records folded
	// exclusively into the torn snapshot (d, submitted between the two
	// snapshots) can be affected — the documented fallback contract is the
	// state as of the previous snapshot plus the current tail.
	recs, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	pending, _ := PendingFromRecords(recs)
	ids := map[change.ID]bool{}
	for _, c := range pending {
		ids[c.ID] = true
	}
	for _, want := range []change.ID{"a", "b", "c", "e"} {
		if !ids[want] {
			t.Fatalf("fallback lost %s: pending = %v", want, ids)
		}
	}
}

// TestSnapshotCrashBeforeTruncateDedups: if the process dies after the
// snapshot rename but before the journal truncation, the tail still holds
// records already folded into the snapshot. Replay must not duplicate
// pending changes or flip decided ones.
func TestSnapshotCrashBeforeTruncateDedups(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := j.AppendSubmit(mkChange(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendOutcome(OutcomeRecord{ID: "a", State: "committed", Commit: "ca", At: time.Unix(2000, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	// Save the pre-snapshot journal bytes, snapshot, then restore the bytes:
	// the snapshot and the full tail now coexist, as after a crash between
	// rename and truncate.
	tail, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot("h1", 0, time.Unix(3000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()
	if err := os.WriteFile(path, tail, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	pending, outcomes := PendingFromRecords(recs)
	if len(pending) != 1 || pending[0].ID != "b" {
		t.Fatalf("pending = %+v, want exactly [b]", pending)
	}
	// keepOutcomes=0, but a's submit survives in the tail, so its outcome
	// must have been tombstoned into the snapshot: a stays decided.
	if len(outcomes) == 0 {
		t.Fatal("outcome for decided change lost: change would resurrect")
	}
	for _, o := range outcomes {
		if o.ID == "a" && o.State != "committed" {
			t.Fatalf("decision flipped: %+v", o)
		}
	}
}

// TestSnapshotHeaderlessRejected: a file without a SnapHead (e.g. a stray
// plain journal at the .snap path) must not be trusted as a snapshot.
func TestSnapshotHeaderlessRejected(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(SnapshotPath(path))
	if err != nil {
		t.Fatal(err)
	}
	_ = j.AppendSubmit(mkChange("x"))
	_ = j.Close()
	if _, _, err := ReplaySnapshot(SnapshotPath(path)); err == nil {
		t.Fatal("headerless snapshot must fail validation")
	}
}

// TestCompactFoldsSnapshotChain: compacting a snapshotted journal folds the
// snapshot chain into the rewritten journal and retires the snapshot files.
func TestCompactFoldsSnapshotChain(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := j.AppendSubmit(mkChange(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot("h1", 10, time.Unix(1000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendOutcome(OutcomeRecord{ID: "a", State: "committed", Commit: "ca", At: time.Unix(2000, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()

	if err := Compact(path, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(SnapshotPath(path)); !os.IsNotExist(err) {
		t.Fatalf("snapshot not retired after compaction: %v", err)
	}
	recs, err := Replay(path) // plain replay: the journal alone holds everything
	if err != nil {
		t.Fatal(err)
	}
	pending, outcomes := PendingFromRecords(recs)
	if len(pending) != 2 || pending[0].ID != "b" || pending[1].ID != "c" {
		t.Fatalf("pending = %+v", pending)
	}
	if len(outcomes) != 1 || outcomes[0].ID != "a" {
		t.Fatalf("outcomes = %+v", outcomes)
	}
}

// TestGroupCommitConcurrentAppends: concurrent appenders must all return
// with their records durable, and the group commit must coalesce their
// fsyncs well below one per append.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.AppendSubmit(mkChange(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// All appends returned => all records durable, before Close.
	recs, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*per {
		t.Fatalf("records = %d, want %d", len(recs), workers*per)
	}
	syncs := j.Syncs()
	if syncs < 1 || syncs > int64(workers*per) {
		t.Fatalf("syncs = %d out of range", syncs)
	}
	t.Logf("group commit: %d appends, %d fsyncs", workers*per, syncs)
	_ = j.Close()
}
