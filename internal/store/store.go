// Package store is SubmitQueue's durable state backend — the role MySQL
// plays in the paper's deployment (§7.1). It provides an append-only journal
// of service events (submissions and final outcomes) with crash-safe replay,
// plus compaction that drops decided changes. On restart, the core service
// replays the journal to re-enqueue every change that was pending when the
// process died, so no developer submission is ever lost.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// Record kinds.
const (
	KindSubmit  = "submit"
	KindOutcome = "outcome"
	// KindSnapHead is the header record of a snapshot file (see snapshot.go).
	KindSnapHead = "snap-head"
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("store: journal closed")

// SubmittedChange is the durable form of a change submission.
type SubmittedChange struct {
	ID          change.ID          `json:"id"`
	Author      change.Developer   `json:"author"`
	Description string             `json:"description"`
	SubmittedAt time.Time          `json:"submitted_at"`
	BaseCommit  repo.CommitID      `json:"base_commit"`
	Steps       []SubmittedStep    `json:"steps"`
	Patch       []SubmittedFile    `json:"patch"`
	Revision    *SubmittedRevision `json:"revision,omitempty"`
	Stats       change.Stats       `json:"stats"`
}

// SubmittedStep serializes one build step.
type SubmittedStep struct {
	Name    string   `json:"name"`
	Kind    int      `json:"kind"`
	Targets []string `json:"targets,omitempty"`
}

// SubmittedFile serializes one file edit.
type SubmittedFile struct {
	Path     string `json:"path"`
	Op       int    `json:"op"`
	BaseHash string `json:"base_hash,omitempty"`
	Content  string `json:"content,omitempty"`
	// Line-edit fields (repo.OpEditLines).
	StartLine int      `json:"start_line,omitempty"`
	OldLines  []string `json:"old_lines,omitempty"`
	NewLines  []string `json:"new_lines,omitempty"`
}

// SubmittedRevision serializes the revision container.
type SubmittedRevision struct {
	ID          change.RevisionID `json:"id"`
	SubmitCount int               `json:"submit_count"`
	TestPlan    bool              `json:"test_plan"`
	RevertPlan  bool              `json:"revert_plan"`
}

// OutcomeRecord is the durable form of a final disposition.
type OutcomeRecord struct {
	ID     change.ID     `json:"id"`
	State  string        `json:"state"` // "committed" or "rejected"
	Reason string        `json:"reason,omitempty"`
	Commit repo.CommitID `json:"commit,omitempty"`
	At     time.Time     `json:"at"`
}

// Record is one journal entry.
type Record struct {
	Kind    string           `json:"kind"`
	Submit  *SubmittedChange `json:"submit,omitempty"`
	Outcome *OutcomeRecord   `json:"outcome,omitempty"`
	Snap    *SnapHead        `json:"snap,omitempty"`
}

// EncodeChange converts a change into its durable form.
func EncodeChange(c *change.Change) *SubmittedChange {
	sc := &SubmittedChange{
		ID:          c.ID,
		Author:      c.Author,
		Description: c.Description,
		SubmittedAt: c.SubmittedAt,
		BaseCommit:  c.BaseCommit,
		Stats:       c.Stats,
	}
	for _, s := range c.BuildSteps {
		sc.Steps = append(sc.Steps, SubmittedStep{Name: s.Name, Kind: int(s.Kind), Targets: s.Targets})
	}
	for _, fc := range c.Patch.Changes {
		sc.Patch = append(sc.Patch, SubmittedFile{
			Path: fc.Path, Op: int(fc.Op), BaseHash: fc.BaseHash, Content: fc.NewContent,
			StartLine: fc.StartLine, OldLines: fc.OldLines, NewLines: fc.NewLines,
		})
	}
	if c.Revision != nil {
		sc.Revision = &SubmittedRevision{
			ID: c.Revision.ID, SubmitCount: c.Revision.SubmitCount,
			TestPlan: c.Revision.TestPlan, RevertPlan: c.Revision.RevertPlan,
		}
	}
	return sc
}

// DecodeChange reconstructs a change from its durable form.
func DecodeChange(sc *SubmittedChange) *change.Change {
	c := &change.Change{
		ID:          sc.ID,
		Author:      sc.Author,
		Description: sc.Description,
		SubmittedAt: sc.SubmittedAt,
		BaseCommit:  sc.BaseCommit,
		Stats:       sc.Stats,
	}
	for _, s := range sc.Steps {
		c.BuildSteps = append(c.BuildSteps, change.BuildStep{
			Name: s.Name, Kind: change.StepKind(s.Kind), Targets: s.Targets,
		})
	}
	for _, f := range sc.Patch {
		c.Patch.Changes = append(c.Patch.Changes, repo.FileChange{
			Path: f.Path, Op: repo.FileOp(f.Op), BaseHash: f.BaseHash, NewContent: f.Content,
			StartLine: f.StartLine, OldLines: f.OldLines, NewLines: f.NewLines,
		})
	}
	if sc.Revision != nil {
		c.Revision = &change.Revision{
			ID: sc.Revision.ID, Author: sc.Author, SubmitCount: sc.Revision.SubmitCount,
			TestPlan: sc.Revision.TestPlan, RevertPlan: sc.Revision.RevertPlan,
		}
	}
	return c
}

// Journal is an append-only JSON-lines log. Safe for concurrent use.
//
// Durability is group-committed: every Append returns only after its record
// is fsynced (durable-before-ack), but concurrent Appends coalesce into one
// Sync — while a leader fsyncs, later appenders buffer their records and
// wait, and the next leader's single fsync covers all of them. Under a
// serial writer this degenerates to one fsync per append, exactly the old
// behavior; under concurrency the fsync count drops by the batch factor.
type Journal struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	w      *bufio.Writer
	closed bool
	// SyncEvery > 1 switches to the legacy batched mode used by bulk
	// rewrites: only every Nth append fsyncs and Append never waits for
	// durability (Close still flushes and syncs). 0 or 1 is the durable
	// group-commit mode.
	SyncEvery int
	appends   int

	// Group-commit state. writeSeq numbers buffered records; syncSeq is the
	// highest record covered by a completed fsync. A single leader holds
	// syncing while it flushes+fsyncs outside the lock; followers wait on
	// syncDone. A failed fsync poisons records up to errSeq with errVal.
	syncDone *sync.Cond
	writeSeq int64
	syncSeq  int64
	syncing  bool
	errSeq   int64
	errVal   error
	syncs    int64
	// snapshots counts Snapshot calls on this handle (see snapshot.go).
	snapshots int64
}

// Open creates or appends to a journal file.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	j := &Journal{path: path, f: f, w: bufio.NewWriter(f), SyncEvery: 1}
	j.syncDone = sync.NewCond(&j.mu)
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Syncs returns the number of fsyncs issued so far (observability: under
// concurrent load this stays far below the append count).
func (j *Journal) Syncs() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncs
}

// Appends returns the number of records appended since open (or since the
// last snapshot truncation).
func (j *Journal) Appends() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Append writes a record durably: it returns after the record is on disk.
func (j *Journal) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	j.appends++
	if j.SyncEvery > 1 {
		// Legacy batched mode: periodic fsync, no durability wait.
		if err := j.w.Flush(); err != nil {
			return fmt.Errorf("store: flush: %w", err)
		}
		if j.appends%j.SyncEvery == 0 {
			j.syncs++
			if err := j.f.Sync(); err != nil {
				return fmt.Errorf("store: sync: %w", err)
			}
		}
		return nil
	}
	j.writeSeq++
	//lint:ignore lockorder waitDurableLocked releases j.mu around the fsync before re-acquiring it
	return j.waitDurableLocked(j.writeSeq)
}

// waitDurableLocked blocks until the record numbered seq is covered by a
// completed fsync, electing this goroutine as the sync leader when no fsync
// is in flight. Callers hold j.mu.
func (j *Journal) waitDurableLocked(seq int64) error {
	for j.syncSeq < seq {
		if j.syncing {
			j.syncDone.Wait()
			continue
		}
		// Become the leader: everything buffered so far rides this fsync.
		j.syncing = true
		target := j.writeSeq
		ferr := j.w.Flush()
		j.mu.Unlock()
		serr := ferr
		if serr == nil {
			serr = j.f.Sync()
		}
		j.mu.Lock()
		j.syncs++
		j.syncSeq = target
		if serr != nil {
			j.errSeq = target
			j.errVal = serr
		}
		j.syncing = false
		j.syncDone.Broadcast()
	}
	if seq <= j.errSeq && j.errVal != nil {
		return fmt.Errorf("store: sync: %w", j.errVal)
	}
	return nil
}

// AppendSubmit records a submission.
func (j *Journal) AppendSubmit(c *change.Change) error {
	return j.Append(Record{Kind: KindSubmit, Submit: EncodeChange(c)})
}

// AppendOutcome records a final disposition.
func (j *Journal) AppendOutcome(o OutcomeRecord) error {
	return j.Append(Record{Kind: KindOutcome, Outcome: &o})
}

// Close flushes and closes the journal. In-flight group commits complete
// first; their waiters are released with their records durable.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	for j.syncing {
		j.syncDone.Wait()
	}
	j.closed = true
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.syncs++
	j.syncSeq = j.writeSeq
	j.syncDone.Broadcast()
	return j.f.Close()
}

// Replay reads all records from a journal file. A trailing partial line
// (torn write from a crash) is tolerated and ignored; corruption anywhere
// else is an error.
func Replay(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: open for replay: %w", err)
	}
	defer f.Close()
	var lines [][]byte
	sc := bufio.NewScanner(f)
	// Size the scan buffer to the file: a freshly-snapshotted journal is a
	// few KB and replaying it should not cost a megabyte of buffer.
	bufCap := 1 << 20
	if st, err := f.Stat(); err == nil && st.Size()+4096 < int64(bufCap) {
		bufCap = int(st.Size()) + 4096
	}
	sc.Buffer(make([]byte, 0, bufCap), 64<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("store: replay: %w", err)
	}
	var out []Record
	for i, line := range lines {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				break // torn final record from a crash: ignore
			}
			return nil, fmt.Errorf("store: corrupt record at line %d: %w", i+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// PendingFromRecords folds a replayed journal into the set of changes that
// were still undecided, in submission order, plus all recorded outcomes.
// Duplicate records for one change ID — which arise when a snapshot and the
// journal tail briefly overlap after a crash mid-rotation — fold to the
// first occurrence: the snapshot replays before the tail, so the earliest
// record wins and a final disposition never flips.
func PendingFromRecords(recs []Record) (pending []*change.Change, outcomes []OutcomeRecord) {
	decided := map[change.ID]bool{}
	for _, r := range recs {
		if r.Kind == KindOutcome && r.Outcome != nil {
			if decided[r.Outcome.ID] {
				continue // duplicate disposition: first decision wins
			}
			decided[r.Outcome.ID] = true
			outcomes = append(outcomes, *r.Outcome)
		}
	}
	seen := map[change.ID]bool{}
	for _, r := range recs {
		if r.Kind == KindSubmit && r.Submit != nil && !decided[r.Submit.ID] && !seen[r.Submit.ID] {
			seen[r.Submit.ID] = true
			pending = append(pending, DecodeChange(r.Submit))
		}
	}
	return pending, outcomes
}

// foldForRewrite reduces a record chain to the live state a rewrite must
// preserve: the pending set, plus the most recent keepOutcomes outcomes,
// plus a tombstone outcome for every decided change whose submit record
// still exists in a file that survives the rewrite (tombstoneFrom). Without
// the tombstones, a crash between the rewrite's rename and the removal or
// truncation of the surviving file could resurrect a decided change: its
// submit would replay from the survivor with no outcome left to decide it.
func foldForRewrite(recs []Record, keepOutcomes int, tombstoneFrom []Record) (pending []*change.Change, outcomes []OutcomeRecord) {
	pending, all := PendingFromRecords(recs)
	survivors := map[change.ID]bool{}
	for _, r := range tombstoneFrom {
		if r.Kind == KindSubmit && r.Submit != nil {
			survivors[r.Submit.ID] = true
		}
	}
	cut := 0
	if keepOutcomes >= 0 && len(all) > keepOutcomes {
		cut = len(all) - keepOutcomes
	}
	for i, o := range all {
		if i >= cut || survivors[o.ID] {
			outcomes = append(outcomes, o)
		}
	}
	return pending, outcomes
}

// writeRewrite writes outcomes then pending submissions to path as a plain
// journal, fsyncing once at close.
func writeRewrite(path string, pending []*change.Change, outcomes []OutcomeRecord) error {
	j, err := Open(path)
	if err != nil {
		return err
	}
	j.SyncEvery = 1 << 30 // one final sync on close
	for _, o := range outcomes {
		if err := j.AppendOutcome(o); err != nil {
			_ = j.Close()
			return err
		}
	}
	for _, c := range pending {
		if err := j.AppendSubmit(c); err != nil {
			_ = j.Close()
			return err
		}
	}
	return j.Close()
}

// Compact rewrites the journal to hold the full live state — undecided
// submissions plus the most recent keepOutcomes outcome records — and then
// retires any snapshot files, bounding journal growth. It folds the whole
// snapshot chain, so compacting a journal that has been snapshotted loses
// nothing; outcome tombstones keep the crash window between the journal
// rename and the snapshot removal consistent (see foldForRewrite).
func Compact(path string, keepOutcomes int) error {
	recs, err := LoadState(path)
	if err != nil {
		return err
	}
	var survivors []Record
	for _, p := range []string{SnapshotPath(path), prevSnapshotPath(path)} {
		if _, sr, err := ReplaySnapshot(p); err == nil {
			survivors = append(survivors, sr...)
		}
	}
	pending, outcomes := foldForRewrite(recs, keepOutcomes, survivors)
	tmp := path + ".compact"
	_ = os.Remove(tmp) // a crashed prior compaction may have left a partial temp
	if err := writeRewrite(tmp, pending, outcomes); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// The journal now holds the complete state; the snapshot chain is stale.
	_ = os.Remove(SnapshotPath(path))
	_ = os.Remove(prevSnapshotPath(path))
	return nil
}
