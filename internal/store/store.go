// Package store is SubmitQueue's durable state backend — the role MySQL
// plays in the paper's deployment (§7.1). It provides an append-only journal
// of service events (submissions and final outcomes) with crash-safe replay,
// plus compaction that drops decided changes. On restart, the core service
// replays the journal to re-enqueue every change that was pending when the
// process died, so no developer submission is ever lost.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// Record kinds.
const (
	KindSubmit  = "submit"
	KindOutcome = "outcome"
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("store: journal closed")

// SubmittedChange is the durable form of a change submission.
type SubmittedChange struct {
	ID          change.ID          `json:"id"`
	Author      change.Developer   `json:"author"`
	Description string             `json:"description"`
	SubmittedAt time.Time          `json:"submitted_at"`
	BaseCommit  repo.CommitID      `json:"base_commit"`
	Steps       []SubmittedStep    `json:"steps"`
	Patch       []SubmittedFile    `json:"patch"`
	Revision    *SubmittedRevision `json:"revision,omitempty"`
	Stats       change.Stats       `json:"stats"`
}

// SubmittedStep serializes one build step.
type SubmittedStep struct {
	Name    string   `json:"name"`
	Kind    int      `json:"kind"`
	Targets []string `json:"targets,omitempty"`
}

// SubmittedFile serializes one file edit.
type SubmittedFile struct {
	Path     string `json:"path"`
	Op       int    `json:"op"`
	BaseHash string `json:"base_hash,omitempty"`
	Content  string `json:"content,omitempty"`
	// Line-edit fields (repo.OpEditLines).
	StartLine int      `json:"start_line,omitempty"`
	OldLines  []string `json:"old_lines,omitempty"`
	NewLines  []string `json:"new_lines,omitempty"`
}

// SubmittedRevision serializes the revision container.
type SubmittedRevision struct {
	ID          change.RevisionID `json:"id"`
	SubmitCount int               `json:"submit_count"`
	TestPlan    bool              `json:"test_plan"`
	RevertPlan  bool              `json:"revert_plan"`
}

// OutcomeRecord is the durable form of a final disposition.
type OutcomeRecord struct {
	ID     change.ID     `json:"id"`
	State  string        `json:"state"` // "committed" or "rejected"
	Reason string        `json:"reason,omitempty"`
	Commit repo.CommitID `json:"commit,omitempty"`
	At     time.Time     `json:"at"`
}

// Record is one journal entry.
type Record struct {
	Kind    string           `json:"kind"`
	Submit  *SubmittedChange `json:"submit,omitempty"`
	Outcome *OutcomeRecord   `json:"outcome,omitempty"`
}

// EncodeChange converts a change into its durable form.
func EncodeChange(c *change.Change) *SubmittedChange {
	sc := &SubmittedChange{
		ID:          c.ID,
		Author:      c.Author,
		Description: c.Description,
		SubmittedAt: c.SubmittedAt,
		BaseCommit:  c.BaseCommit,
		Stats:       c.Stats,
	}
	for _, s := range c.BuildSteps {
		sc.Steps = append(sc.Steps, SubmittedStep{Name: s.Name, Kind: int(s.Kind), Targets: s.Targets})
	}
	for _, fc := range c.Patch.Changes {
		sc.Patch = append(sc.Patch, SubmittedFile{
			Path: fc.Path, Op: int(fc.Op), BaseHash: fc.BaseHash, Content: fc.NewContent,
			StartLine: fc.StartLine, OldLines: fc.OldLines, NewLines: fc.NewLines,
		})
	}
	if c.Revision != nil {
		sc.Revision = &SubmittedRevision{
			ID: c.Revision.ID, SubmitCount: c.Revision.SubmitCount,
			TestPlan: c.Revision.TestPlan, RevertPlan: c.Revision.RevertPlan,
		}
	}
	return sc
}

// DecodeChange reconstructs a change from its durable form.
func DecodeChange(sc *SubmittedChange) *change.Change {
	c := &change.Change{
		ID:          sc.ID,
		Author:      sc.Author,
		Description: sc.Description,
		SubmittedAt: sc.SubmittedAt,
		BaseCommit:  sc.BaseCommit,
		Stats:       sc.Stats,
	}
	for _, s := range sc.Steps {
		c.BuildSteps = append(c.BuildSteps, change.BuildStep{
			Name: s.Name, Kind: change.StepKind(s.Kind), Targets: s.Targets,
		})
	}
	for _, f := range sc.Patch {
		c.Patch.Changes = append(c.Patch.Changes, repo.FileChange{
			Path: f.Path, Op: repo.FileOp(f.Op), BaseHash: f.BaseHash, NewContent: f.Content,
			StartLine: f.StartLine, OldLines: f.OldLines, NewLines: f.NewLines,
		})
	}
	if sc.Revision != nil {
		c.Revision = &change.Revision{
			ID: sc.Revision.ID, Author: sc.Author, SubmitCount: sc.Revision.SubmitCount,
			TestPlan: sc.Revision.TestPlan, RevertPlan: sc.Revision.RevertPlan,
		}
	}
	return c
}

// Journal is an append-only JSON-lines log. Safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	w      *bufio.Writer
	closed bool
	// SyncEvery controls fsync frequency: every Nth append forces the OS
	// buffers to disk (1 = always; 0 defaults to 1).
	SyncEvery int
	appends   int
}

// Open creates or appends to a journal file.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	return &Journal{path: path, f: f, w: bufio.NewWriter(f), SyncEvery: 1}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append writes a record durably.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	j.appends++
	every := j.SyncEvery
	if every <= 0 {
		every = 1
	}
	if j.appends%every == 0 {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	return nil
}

// AppendSubmit records a submission.
func (j *Journal) AppendSubmit(c *change.Change) error {
	return j.Append(Record{Kind: KindSubmit, Submit: EncodeChange(c)})
}

// AppendOutcome records a final disposition.
func (j *Journal) AppendOutcome(o OutcomeRecord) error {
	return j.Append(Record{Kind: KindOutcome, Outcome: &o})
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	return j.f.Close()
}

// Replay reads all records from a journal file. A trailing partial line
// (torn write from a crash) is tolerated and ignored; corruption anywhere
// else is an error.
func Replay(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: open for replay: %w", err)
	}
	defer f.Close()
	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("store: replay: %w", err)
	}
	var out []Record
	for i, line := range lines {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				break // torn final record from a crash: ignore
			}
			return nil, fmt.Errorf("store: corrupt record at line %d: %w", i+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// PendingFromRecords folds a replayed journal into the set of changes that
// were still undecided, in submission order, plus all recorded outcomes.
func PendingFromRecords(recs []Record) (pending []*change.Change, outcomes []OutcomeRecord) {
	decided := map[change.ID]bool{}
	for _, r := range recs {
		if r.Kind == KindOutcome && r.Outcome != nil {
			decided[r.Outcome.ID] = true
			outcomes = append(outcomes, *r.Outcome)
		}
	}
	for _, r := range recs {
		if r.Kind == KindSubmit && r.Submit != nil && !decided[r.Submit.ID] {
			pending = append(pending, DecodeChange(r.Submit))
		}
	}
	return pending, outcomes
}

// Compact rewrites the journal keeping only undecided submissions and the
// most recent keepOutcomes outcome records, bounding journal growth.
func Compact(path string, keepOutcomes int) error {
	recs, err := Replay(path)
	if err != nil {
		return err
	}
	pending, outcomes := PendingFromRecords(recs)
	if keepOutcomes >= 0 && len(outcomes) > keepOutcomes {
		outcomes = outcomes[len(outcomes)-keepOutcomes:]
	}
	tmp := path + ".compact"
	j, err := Open(tmp)
	if err != nil {
		return err
	}
	j.SyncEvery = 1 << 30 // one final sync on close
	for _, o := range outcomes {
		if err := j.AppendOutcome(o); err != nil {
			_ = j.Close()
			return err
		}
	}
	for _, c := range pending {
		if err := j.AppendSubmit(c); err != nil {
			_ = j.Close()
			return err
		}
	}
	if err := j.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
