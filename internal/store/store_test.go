package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.jsonl")
}

func mkChange(id string) *change.Change {
	return &change.Change{
		ID:          change.ID(id),
		Author:      change.Developer{Name: "alice", Team: "infra", Level: 4, EmploymentMonths: 20},
		Description: "desc " + id,
		SubmittedAt: time.Unix(1000, 0).UTC(),
		BaseCommit:  "base123",
		BuildSteps:  change.DefaultBuildSteps(),
		Patch: repo.Patch{Changes: []repo.FileChange{
			{Path: "a.go", Op: repo.OpModify, BaseHash: "h1", NewContent: "new"},
			{Path: "b.go", Op: repo.OpCreate, NewContent: "b"},
		}},
		Revision: &change.Revision{ID: "r1", SubmitCount: 2, TestPlan: true},
		Stats:    change.Stats{FilesChanged: 2, LinesAdded: 10},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := mkChange("c1")
	got := DecodeChange(EncodeChange(c))
	if got.ID != c.ID || got.Author != c.Author || got.Description != c.Description {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if got.BaseCommit != c.BaseCommit || !got.SubmittedAt.Equal(c.SubmittedAt) {
		t.Fatalf("base/time mismatch: %+v", got)
	}
	if len(got.BuildSteps) != len(c.BuildSteps) || got.BuildSteps[0].Kind != change.StepCompile {
		t.Fatalf("steps mismatch: %+v", got.BuildSteps)
	}
	if len(got.Patch.Changes) != 2 || got.Patch.Changes[0].BaseHash != "h1" {
		t.Fatalf("patch mismatch: %+v", got.Patch)
	}
	if got.Revision == nil || got.Revision.SubmitCount != 2 || !got.Revision.TestPlan {
		t.Fatalf("revision mismatch: %+v", got.Revision)
	}
	if got.Stats != c.Stats {
		t.Fatalf("stats mismatch: %+v", got.Stats)
	}
}

func TestJournalAppendReplay(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit(mkChange("c1")); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit(mkChange("c2")); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendOutcome(OutcomeRecord{ID: "c1", State: "committed", Commit: "abc", At: time.Unix(2000, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent; Append after Close fails.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit(mkChange("c3")); err != ErrClosed {
		t.Fatalf("append after close = %v", err)
	}

	recs, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	pending, outcomes := PendingFromRecords(recs)
	if len(pending) != 1 || pending[0].ID != "c2" {
		t.Fatalf("pending = %v", pending)
	}
	if len(outcomes) != 1 || outcomes[0].Commit != "abc" {
		t.Fatalf("outcomes = %v", outcomes)
	}
}

func TestReplayMissingFile(t *testing.T) {
	recs, err := Replay(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || recs != nil {
		t.Fatalf("missing file: %v, %v", recs, err)
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Open(path)
	_ = j.AppendSubmit(mkChange("c1"))
	_ = j.Close()
	// Simulate a crash mid-write: append half a record.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"kind":"submit","sub`)
	f.Close()
	recs, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
}

func TestReplayRejectsMidFileCorruption(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Open(path)
	_ = j.AppendSubmit(mkChange("c1"))
	_ = j.Close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("GARBAGE\n")
	f.Close()
	j2, _ := Open(path)
	_ = j2.AppendSubmit(mkChange("c2"))
	_ = j2.Close()
	if _, err := Replay(path); err == nil {
		t.Fatal("mid-file corruption must be reported")
	}
}

func TestJournalAppendAfterReopen(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Open(path)
	_ = j.AppendSubmit(mkChange("c1"))
	_ = j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = j2.AppendSubmit(mkChange("c2"))
	_ = j2.Close()
	recs, err := Replay(path)
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs = %d, %v", len(recs), err)
	}
}

func TestCompact(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Open(path)
	for i := 0; i < 5; i++ {
		_ = j.AppendSubmit(mkChange(string(rune('a' + i))))
	}
	for _, id := range []string{"a", "b", "c"} {
		_ = j.AppendOutcome(OutcomeRecord{ID: change.ID(id), State: "committed", At: time.Unix(int64(2000), 0)})
	}
	_ = j.Close()
	if err := Compact(path, 2); err != nil {
		t.Fatal(err)
	}
	recs, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	pending, outcomes := PendingFromRecords(recs)
	if len(pending) != 2 { // d, e undecided
		t.Fatalf("pending = %d", len(pending))
	}
	if len(outcomes) != 2 { // kept the most recent 2
		t.Fatalf("outcomes = %d", len(outcomes))
	}
}

func TestSyncEveryBatches(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Open(path)
	j.SyncEvery = 10
	for i := 0; i < 25; i++ {
		if err := j.AppendSubmit(mkChange(string(rune('a' + i)))); err != nil {
			t.Fatal(err)
		}
	}
	_ = j.Close()
	recs, err := Replay(path)
	if err != nil || len(recs) != 25 {
		t.Fatalf("recs = %d, %v", len(recs), err)
	}
}

func TestEncodeDecodeLineEdit(t *testing.T) {
	c := mkChange("le")
	c.Patch = repo.Patch{Changes: []repo.FileChange{
		repo.EditLines("a.go", 7, []string{"old1", "old2"}, []string{"new"}),
	}}
	got := DecodeChange(EncodeChange(c))
	fc := got.Patch.Changes[0]
	if fc.Op != repo.OpEditLines || fc.StartLine != 7 ||
		len(fc.OldLines) != 2 || fc.OldLines[1] != "old2" || fc.NewLines[0] != "new" {
		t.Fatalf("line edit lost in round trip: %+v", fc)
	}
}
