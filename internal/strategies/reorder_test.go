package strategies

import (
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/sim"
	"mastergreen/internal/workload"
)

// reorderScenario: a 2-hour refactor arrives first, then a 5-minute fix in
// the same component. Without reordering the fix waits for the refactor;
// with reordering it commits immediately (§10).
func reorderScenario() *workload.Workload {
	mk := func(i int, at, dur time.Duration) *workload.Change {
		pc := map[int]bool{}
		if i == 0 {
			pc[1] = true
		} else {
			pc[0] = true
		}
		return &workload.Change{
			Index: i, ID: change.ID([]byte{byte('c'), '0', '0', '0', '0', '0', byte('0' + i)}),
			SubmitAt: at, Duration: dur, Succeeds: true,
			PotentialConflicts: pc, RealConflicts: map[int]bool{},
			Meta: &change.Change{ID: change.ID([]byte{byte('c'), '0', '0', '0', '0', '0', byte('0' + i)})},
		}
	}
	return &workload.Workload{
		Cfg: workload.Config{Count: 2},
		Changes: []*workload.Change{
			mk(0, 0, 2*time.Hour),
			mk(1, time.Minute, 5*time.Minute),
		},
	}
}

func TestReorderSmallChangeJumpsAhead(t *testing.T) {
	w := reorderScenario()
	base := NewSubmitQueue(w, w.OraclePredictor())
	resBase := sim.Run(w, base, sim.Config{Workers: 4, UseAnalyzer: true})

	re := NewSubmitQueue(w, w.OraclePredictor())
	re.ReorderSmall = true
	resRe := sim.Run(w, re, sim.Config{Workers: 4, UseAnalyzer: true})

	if resBase.Committed != 2 || resRe.Committed != 2 {
		t.Fatalf("commits: base=%d reorder=%d", resBase.Committed, resRe.Committed)
	}
	if resBase.GreenViolations != 0 || resRe.GreenViolations != 0 {
		t.Fatal("green violation")
	}
	// Without reordering the small change waits ≈2h; with it, ≈5min.
	baseP50 := resBase.Summary().P50
	reP50 := resRe.Summary().P50
	if reP50 >= baseP50 {
		t.Fatalf("reordering did not help: base P50 %.0f vs reorder %.0f", baseP50, reP50)
	}
	// The small change decided in well under an hour.
	min := resRe.TurnaroundCommittedMin[0]
	for _, v := range resRe.TurnaroundCommittedMin {
		if v < min {
			min = v
		}
	}
	if min > 30 {
		t.Fatalf("small change turnaround %.0f min, want immediate", min)
	}
}

func TestReorderKeepsMainlineGreenUnderLoad(t *testing.T) {
	w := workload.Generate(workload.IOSConfig(11, 300, 250))
	re := NewSubmitQueue(w, w.OraclePredictor())
	re.ReorderSmall = true
	res := sim.Run(w, re, sim.Config{Workers: 150, UseAnalyzer: true})
	if res.GreenViolations != 0 {
		t.Fatalf("green violations: %d", res.GreenViolations)
	}
	if res.Committed+res.Rejected != len(w.Changes) {
		t.Fatalf("decided %d of %d", res.Committed+res.Rejected, len(w.Changes))
	}
	// Reordering can change which side of a real conflict lands, so the
	// commit COUNT may differ slightly from the in-order outcome, but not
	// wildly.
	inOrder := 0
	for _, v := range w.EventualOutcomes() {
		if v {
			inOrder++
		}
	}
	diff := res.Committed - inOrder
	if diff < -20 || diff > 20 {
		t.Fatalf("commit count diverged: %d vs %d in-order", res.Committed, inOrder)
	}
}
