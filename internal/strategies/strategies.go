// Package strategies implements the scheduling approaches compared in §8:
//
//   - Oracle: perfectly predicts every outcome; schedules exactly the n
//     builds that will be needed. The normalization baseline.
//   - SingleQueue: Bors-style — one change at a time per conflict component;
//     independent changes proceed in parallel.
//   - Optimistic: Zuul-style — every pending change builds assuming all its
//     pending conflicting predecessors succeed.
//   - SpeculateAll: the §4.1 strawman — enumerate the speculation graph
//     assuming every build succeeds with probability 50%.
//   - SubmitQueue: the paper's system — probabilistic speculation driven by
//     a predictor (trained logistic regression in production).
//   - Batch: the §10 "batching independent changes" extension and the
//     Chromium commit-queue baseline — group changes, build the whole batch,
//     bisect on failure.
//
// All of them plan over sim.State and reuse the real speculation engine
// where applicable, so the evaluation exercises the same code path as the
// live service.
package strategies

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mastergreen/internal/change"
	"mastergreen/internal/predict"
	"mastergreen/internal/sim"
	"mastergreen/internal/speculation"
	"mastergreen/internal/workload"
)

// indexOf decodes a workload change ID ("c000123") back to its index.
func indexOf(id change.ID) int {
	s := strings.TrimPrefix(string(id), "c")
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}

// Oracle schedules, for every pending change, the exact build whose
// assumptions will come true, using the workload's scheduling-independent
// eventual outcomes (§8: "Our Oracle implementation can perfectly predict
// the outcome of a change").
type Oracle struct {
	Eventual []bool // EventualOutcomes of the workload
}

// NewOracle builds an Oracle strategy for the workload.
func NewOracle(w *workload.Workload) *Oracle {
	return &Oracle{Eventual: w.EventualOutcomes()}
}

// Name implements sim.Strategy.
func (o *Oracle) Name() string { return "Oracle" }

// Plan implements sim.Strategy.
func (o *Oracle) Plan(st *sim.State) []sim.BuildSpec {
	var out []sim.BuildSpec
	for _, i := range planWindow(st) {
		var assumed, rejected []int
		for _, j := range st.PendingConflictingPredecessors(i) {
			if o.Eventual[j] {
				assumed = append(assumed, j)
			} else {
				rejected = append(rejected, j)
			}
		}
		out = append(out, sim.BuildSpec{
			Subject:         i,
			Assumed:         assumed,
			AssumedRejected: rejected,
			Priority:        -float64(i), // oldest first
		})
	}
	return out
}

// SingleQueue processes conflicting changes strictly one at a time; only
// changes with no pending conflicting predecessor build (so independent
// changes still run in parallel, as in §8's description).
type SingleQueue struct{}

// Name implements sim.Strategy.
func (SingleQueue) Name() string { return "Single-Queue" }

// Plan implements sim.Strategy.
func (SingleQueue) Plan(st *sim.State) []sim.BuildSpec {
	var out []sim.BuildSpec
	for _, i := range st.Pending {
		if st.HasPendingConflictingPredecessor(i) {
			continue
		}
		out = append(out, sim.BuildSpec{Subject: i, Priority: -float64(i)})
	}
	return out
}

// Optimistic assumes every pending change will succeed: each change builds
// on top of all its pending conflicting predecessors (Zuul). A failure
// invalidates every downstream build, which the engine aborts on the next
// reconcile.
type Optimistic struct{}

// Name implements sim.Strategy.
func (Optimistic) Name() string { return "Optimistic" }

// Plan implements sim.Strategy.
func (Optimistic) Plan(st *sim.State) []sim.BuildSpec {
	var out []sim.BuildSpec
	for _, i := range planWindow(st) {
		out = append(out, sim.BuildSpec{
			Subject:  i,
			Assumed:  st.PendingConflictingPredecessors(i),
			Priority: -float64(i),
		})
	}
	return out
}

// planWindow bounds the pending prefix worth planning. Without the conflict
// analyzer every pair conflicts, so changes beyond the first
// workers+slack positions cannot run a useful build yet (their speculation
// chain exceeds the worker pool); planning over the full multi-thousand
// backlog would only add O(p²) work. With the analyzer the full pending set
// is planned.
func planWindow(st *sim.State) []int {
	if st.UseAnalyzer {
		return st.Pending
	}
	lim := st.Workers + 64
	if len(st.Pending) <= lim {
		return st.Pending
	}
	return st.Pending[:lim]
}

// Speculative runs the real speculation engine over the pending set; the
// predictor decides the flavor: Static{0.5} reproduces Speculate-all, a
// trained or oracle predictor reproduces SubmitQueue.
//
// A Speculative instance carries per-run speculation-feedback state and must
// not be shared across sim.Run calls.
type Speculative struct {
	Label  string
	Engine *speculation.Engine
	W      *workload.Workload

	// feedback implements §7.2's dynamic features ("the number of
	// speculations that succeeded or failed were also included"): observed
	// build outcomes shift the per-change success logit, so a change whose
	// speculative builds keep failing quickly loses speculation priority
	// even when its static features look healthy. Nil for strategies that
	// do not adapt (Speculate-all).
	feedback *feedback
	scanned  int // st.Finished prefix already folded into feedback

	// ReorderSmall enables the §10 change-reordering extension: a pending
	// change whose own build is at most ReorderRatio of the total expected
	// build time of its pending conflicting predecessors additionally gets a
	// no-assumption build that may commit ahead of them. Commit order among
	// conflicting changes then deviates from submission order (the paper's
	// noted fairness trade-off), but the mainline stays green.
	ReorderSmall bool
	// ReorderRatio is the size threshold (default 0.5 when ReorderSmall).
	ReorderRatio float64

	// SkippedBranches accumulates the speculation branch points collapsed by
	// Engine.SkipThreshold across the run (DESIGN.md §4j); experiments read it
	// after sim.Run to report how much of the tree was never built.
	// SkippedBuilds accumulates nodes dropped outright because the predictor
	// was confident their result would never be used (P_needed ≤ 1−τ).
	SkippedBranches int
	SkippedBuilds   int
}

// feedback accumulates per-change speculation evidence.
type feedback struct {
	succ map[*change.Change]float64
	fail map[*change.Change]float64
}

// logit weights for one unit of speculation evidence. A failed build is
// discounted by its assumption count (the failure may be an assumed
// predecessor's fault, not the subject's).
const (
	fbSuccWeight = 1.2
	fbFailWeight = 2.5
)

// feedbackPredictor adjusts the inner model's P_succ with observed
// speculation outcomes (Bayes-style logit shift); P_conf passes through.
type feedbackPredictor struct {
	inner predict.Predictor
	fb    *feedback
}

// PredictSuccess implements predict.Predictor.
func (f feedbackPredictor) PredictSuccess(c *change.Change) float64 {
	p := f.inner.PredictSuccess(c)
	s, fl := f.fb.succ[c], f.fb.fail[c]
	if s == 0 && fl == 0 {
		return p
	}
	if p <= 0 || p >= 1 {
		return p // a certain predictor (the Oracle) needs no evidence
	}
	z := math.Log(p/(1-p)) + fbSuccWeight*s - fbFailWeight*fl
	return predict.Sigmoid(z)
}

// PredictConflict implements predict.Predictor.
func (f feedbackPredictor) PredictConflict(a, b *change.Change) float64 {
	return f.inner.PredictConflict(a, b)
}

// NewSpeculateAll returns the §4.1 speculate-everything baseline.
func NewSpeculateAll(w *workload.Workload) *Speculative {
	return &Speculative{
		Label:  "Speculate-all",
		Engine: speculation.New(predict.Static{Success: 0.5, Conflict: 0}),
		W:      w,
	}
}

// NewSubmitQueue returns the paper's system with the given predictor.
// Static predictions are memoized per change/pair (feature vectors never
// change within a simulated workload); on top of them, speculation feedback
// (§7.2's dynamic features) adapts P_succ as builds finish.
func NewSubmitQueue(w *workload.Workload, p predict.Predictor) *Speculative {
	fb := &feedback{succ: map[*change.Change]float64{}, fail: map[*change.Change]float64{}}
	return &Speculative{
		Label:    "SubmitQueue",
		Engine:   speculation.New(feedbackPredictor{inner: newMemoPredictor(p), fb: fb}),
		W:        w,
		feedback: fb,
	}
}

// memoPredictor caches predictions keyed by change pointers; safe because
// sim-side feature vectors never change after workload generation.
type memoPredictor struct {
	inner predict.Predictor
	succ  map[*change.Change]float64
	conf  map[[2]*change.Change]float64
}

func newMemoPredictor(p predict.Predictor) *memoPredictor {
	return &memoPredictor{
		inner: p,
		succ:  map[*change.Change]float64{},
		conf:  map[[2]*change.Change]float64{},
	}
}

// PredictSuccess implements predict.Predictor.
func (m *memoPredictor) PredictSuccess(c *change.Change) float64 {
	if v, ok := m.succ[c]; ok {
		return v
	}
	v := m.inner.PredictSuccess(c)
	m.succ[c] = v
	return v
}

// PredictConflict implements predict.Predictor.
func (m *memoPredictor) PredictConflict(a, b *change.Change) float64 {
	k := [2]*change.Change{a, b}
	if a.ID > b.ID {
		k = [2]*change.Change{b, a}
	}
	if v, ok := m.conf[k]; ok {
		return v
	}
	v := m.inner.PredictConflict(a, b)
	m.conf[k] = v
	return v
}

// Name implements sim.Strategy.
func (s *Speculative) Name() string { return s.Label }

// Plan implements sim.Strategy.
func (s *Speculative) Plan(st *sim.State) []sim.BuildSpec {
	// Fold newly finished builds into the speculation-feedback state.
	if s.feedback != nil {
		for ; s.scanned < len(st.Finished); s.scanned++ {
			fb := st.Finished[s.scanned]
			if len(fb.Spec.Batch) > 0 {
				continue
			}
			subj := s.W.Changes[fb.Spec.Subject].Meta
			if fb.OK {
				s.feedback.succ[subj]++
			} else {
				// A failed build blames the subject with confidence inverse
				// to how much it assumed.
				s.feedback.fail[subj] += 1 / float64(1+len(fb.Spec.Assumed))
			}
		}
	}
	if len(st.Pending) == 0 {
		return nil
	}
	// Assemble the engine's view: pending change metas plus the conflicting
	// predecessors the analyzer reports, as positions into the pending list.
	window := planWindow(st)
	pending := make([]*change.Change, len(window))
	pos := make(map[int]int, len(window)) // workload index -> pending position
	for k, i := range window {
		pending[k] = s.W.Changes[i].Meta
		pos[i] = k
	}
	preds := make([][]int, len(window))
	for k, i := range window {
		if st.UseAnalyzer {
			for j := range s.W.Changes[i].PotentialConflicts {
				if j < i {
					if pj, ok := pos[j]; ok {
						preds[k] = append(preds[k], pj)
					}
				}
			}
			sort.Ints(preds[k])
		} else {
			// Every earlier pending change conflicts. The speculation engine
			// only branches over the most recent MaxSpecDepth anyway, and in
			// this saturated regime P_commit estimates are insensitive to
			// predecessors beyond a small window — so cap the list and keep
			// planning O(p·window) instead of O(p²).
			lo := k - 2*speculation.DefaultMaxSpecDepth
			if lo < 0 {
				lo = 0
			}
			preds[k] = make([]int, 0, k-lo)
			for j := lo; j < k; j++ {
				preds[k] = append(preds[k], j)
			}
		}
	}
	plan := s.Engine.Plan(speculation.Request{
		Pending: pending,
		Preds:   preds,
		Budget:  st.Workers,
	})
	s.SkippedBranches += plan.BranchesSkipped
	s.SkippedBuilds += plan.BuildsSkipped
	out := make([]sim.BuildSpec, 0, len(plan.Builds))
	for _, b := range plan.Builds {
		spec := sim.BuildSpec{
			Subject:  window[b.SubjectIdx],
			Priority: b.PNeeded,
		}
		for _, a := range b.AssumedIdx {
			spec.Assumed = append(spec.Assumed, window[a])
		}
		for _, r := range b.AssumedRejectedIdx {
			spec.AssumedRejected = append(spec.AssumedRejected, window[r])
		}
		out = append(out, spec)
	}
	if s.ReorderSmall {
		out = append(out, s.reorderSpecs(st)...)
	}
	return out
}

// reorderSpecs synthesizes §10 reorder builds: for each pending change much
// smaller than the conflicting work ahead of it, a no-assumption build that
// may commit immediately.
func (s *Speculative) reorderSpecs(st *sim.State) []sim.BuildSpec {
	ratio := s.ReorderRatio
	if ratio <= 0 {
		ratio = 0.5
	}
	var out []sim.BuildSpec
	for _, i := range st.Pending {
		preds := st.PendingConflictingPredecessors(i)
		if len(preds) == 0 {
			continue // the ordinary plan already decides it
		}
		var ahead float64
		for _, j := range preds {
			ahead += s.W.Changes[j].Duration.Minutes()
		}
		own := s.W.Changes[i].Duration.Minutes()
		if own > ratio*ahead {
			continue
		}
		out = append(out, sim.BuildSpec{
			Subject:      i,
			AllowReorder: true,
			Priority:     0.9, // hedge: high but below certain decisive builds
		})
	}
	return out
}

// Batch groups up to BatchSize ready changes per conflict component and
// builds them as one unit; on failure it bisects the batch (Chromium
// commit-queue). With BatchSize 1 it degenerates to SingleQueue.
type Batch struct {
	BatchSize int
}

// Name implements sim.Strategy.
func (b *Batch) Name() string { return fmt.Sprintf("Batch-%d", b.size()) }

func (b *Batch) size() int {
	if b.BatchSize <= 1 {
		return 4
	}
	return b.BatchSize
}

// Plan implements sim.Strategy.
func (b *Batch) Plan(st *sim.State) []sim.BuildSpec {
	// Group ready changes greedily: a change joins the current batch if it
	// has no pending conflicting predecessor outside the batch.
	var out []sim.BuildSpec
	curSet := map[int]bool{}
	var cur []int
	flush := func() {
		if len(cur) == 0 {
			return
		}
		batch := append([]int(nil), cur...)
		out = append(out, sim.BuildSpec{
			Subject:  batch[len(batch)-1],
			Batch:    batch,
			Priority: -float64(batch[0]),
		})
		cur = nil
		curSet = map[int]bool{}
	}
	for _, i := range st.Pending {
		// A change may only join the batch that already contains all of its
		// pending conflicting predecessors; cross-batch dependencies would
		// break atomic batch commits.
		ready := true
		for _, j := range st.PendingConflictingPredecessors(i) {
			if !curSet[j] {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		// A failed batch containing i means we must split: fall back to
		// smaller batches after a recent failure.
		cur = append(cur, i)
		curSet[i] = true
		if len(cur) >= b.effectiveSize(st, cur) {
			flush()
		}
	}
	flush()
	return out
}

// effectiveSize implements bisect-on-failure: a change that appeared in a
// failed batch build may only join a batch half that batch's size, so
// repeated failures shrink to singletons, whose failures the engine resolves
// as terminal rejections.
func (b *Batch) effectiveSize(st *sim.State, cur []int) int {
	size := b.size()
	for k := len(st.Finished) - 1; k >= 0 && k >= len(st.Finished)-64; k-- {
		fb := st.Finished[k]
		if fb.OK || len(fb.Spec.Batch) < 2 {
			continue
		}
		for _, m := range fb.Spec.Batch {
			for _, c := range cur {
				if m == c {
					half := len(fb.Spec.Batch) / 2
					if half < 1 {
						half = 1
					}
					if half < size {
						size = half
					}
				}
			}
		}
	}
	return size
}

// Interface checks.
var (
	_ sim.Strategy = (*Oracle)(nil)
	_ sim.Strategy = SingleQueue{}
	_ sim.Strategy = Optimistic{}
	_ sim.Strategy = (*Speculative)(nil)
	_ sim.Strategy = (*Batch)(nil)
)
