// Package strategies implements the scheduling approaches compared in §8:
//
//   - Oracle: perfectly predicts every outcome; schedules exactly the n
//     builds that will be needed. The normalization baseline.
//   - SingleQueue: Bors-style — one change at a time per conflict component;
//     independent changes proceed in parallel.
//   - Optimistic: Zuul-style — every pending change builds assuming all its
//     pending conflicting predecessors succeed.
//   - SpeculateAll: the §4.1 strawman — enumerate the speculation graph
//     assuming every build succeeds with probability 50%.
//   - SubmitQueue: the paper's system — probabilistic speculation driven by
//     a predictor (trained logistic regression in production).
//   - Batch: the §10 "batching independent changes" extension and the
//     Chromium commit-queue baseline — group changes, build the whole batch,
//     bisect on failure.
//
// All of them plan over sim.State and reuse the real speculation engine
// where applicable, so the evaluation exercises the same code path as the
// live service.
package strategies

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/predict"
	"mastergreen/internal/sched"
	"mastergreen/internal/sim"
	"mastergreen/internal/speculation"
	"mastergreen/internal/workload"
)

// SimEpoch anchors the simulator's virtual clock to wall-clock types: a
// change whose deadline is D minutes of virtual time carries
// Meta.Deadline = SimEpoch.Add(D), and sched policies evaluate urgency
// against SimEpoch.Add(st.Now).
var SimEpoch = time.Unix(0, 0).UTC()

// indexOf decodes a workload change ID ("c000123") back to its index.
func indexOf(id change.ID) int {
	s := strings.TrimPrefix(string(id), "c")
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}

// Oracle schedules, for every pending change, the exact build whose
// assumptions will come true, using the workload's scheduling-independent
// eventual outcomes (§8: "Our Oracle implementation can perfectly predict
// the outcome of a change").
type Oracle struct {
	Eventual []bool // EventualOutcomes of the workload
}

// NewOracle builds an Oracle strategy for the workload.
func NewOracle(w *workload.Workload) *Oracle {
	return &Oracle{Eventual: w.EventualOutcomes()}
}

// Name implements sim.Strategy.
func (o *Oracle) Name() string { return "Oracle" }

// Plan implements sim.Strategy.
func (o *Oracle) Plan(st *sim.State) []sim.BuildSpec {
	var out []sim.BuildSpec
	for _, i := range planWindow(st) {
		var assumed, rejected []int
		for _, j := range st.PendingConflictingPredecessors(i) {
			if o.Eventual[j] {
				assumed = append(assumed, j)
			} else {
				rejected = append(rejected, j)
			}
		}
		out = append(out, sim.BuildSpec{
			Subject:         i,
			Assumed:         assumed,
			AssumedRejected: rejected,
			Priority:        -float64(i), // oldest first
		})
	}
	return out
}

// SingleQueue processes conflicting changes strictly one at a time; only
// changes with no pending conflicting predecessor build (so independent
// changes still run in parallel, as in §8's description).
type SingleQueue struct{}

// Name implements sim.Strategy.
func (SingleQueue) Name() string { return "Single-Queue" }

// Plan implements sim.Strategy.
func (SingleQueue) Plan(st *sim.State) []sim.BuildSpec {
	var out []sim.BuildSpec
	for _, i := range st.Pending {
		if st.HasPendingConflictingPredecessor(i) {
			continue
		}
		out = append(out, sim.BuildSpec{Subject: i, Priority: -float64(i)})
	}
	return out
}

// Optimistic assumes every pending change will succeed: each change builds
// on top of all its pending conflicting predecessors (Zuul). A failure
// invalidates every downstream build, which the engine aborts on the next
// reconcile.
type Optimistic struct{}

// Name implements sim.Strategy.
func (Optimistic) Name() string { return "Optimistic" }

// Plan implements sim.Strategy.
func (Optimistic) Plan(st *sim.State) []sim.BuildSpec {
	var out []sim.BuildSpec
	for _, i := range planWindow(st) {
		out = append(out, sim.BuildSpec{
			Subject:  i,
			Assumed:  st.PendingConflictingPredecessors(i),
			Priority: -float64(i),
		})
	}
	return out
}

// planWindow bounds the pending prefix worth planning. Without the conflict
// analyzer every pair conflicts, so changes beyond the first
// workers+slack positions cannot run a useful build yet (their speculation
// chain exceeds the worker pool); planning over the full multi-thousand
// backlog would only add O(p²) work. With the analyzer the full pending set
// is planned.
func planWindow(st *sim.State) []int {
	if st.UseAnalyzer {
		return st.Pending
	}
	lim := st.Workers + 64
	if len(st.Pending) <= lim {
		return st.Pending
	}
	return st.Pending[:lim]
}

// Speculative runs the real speculation engine over the pending set; the
// predictor decides the flavor: Static{0.5} reproduces Speculate-all, a
// trained or oracle predictor reproduces SubmitQueue.
//
// A Speculative instance carries per-run speculation-feedback state and must
// not be shared across sim.Run calls.
type Speculative struct {
	Label  string
	Engine *speculation.Engine
	W      *workload.Workload

	// feedback implements §7.2's dynamic features ("the number of
	// speculations that succeeded or failed were also included"): observed
	// build outcomes shift the per-change success logit, so a change whose
	// speculative builds keep failing quickly loses speculation priority
	// even when its static features look healthy. Nil for strategies that
	// do not adapt (Speculate-all).
	feedback *feedback
	scanned  int // st.Finished prefix already folded into feedback

	// ReorderSmall enables the §10 change-reordering extension: a pending
	// change whose own build is at most ReorderRatio of the total expected
	// build time of its pending conflicting predecessors additionally gets a
	// no-assumption build that may commit ahead of them. Commit order among
	// conflicting changes then deviates from submission order (the paper's
	// noted fairness trade-off), but the mainline stays green.
	ReorderSmall bool
	// ReorderRatio is the size threshold (default 0.5 when ReorderSmall).
	ReorderRatio float64

	// SkippedBranches accumulates the speculation branch points collapsed by
	// Engine.SkipThreshold across the run (DESIGN.md §4j); experiments read it
	// after sim.Run to report how much of the tree was never built.
	// SkippedBuilds accumulates nodes dropped outright because the predictor
	// was confident their result would never be used (P_needed ≤ 1−τ).
	SkippedBranches int
	SkippedBuilds   int

	// Sched, when non-nil, turns on priority-lane planning (DESIGN.md §4l):
	// each pending change's Class/Deadline (on its workload Meta, with
	// deadlines anchored at SimEpoch) becomes a weight multiplied into the
	// engine's value function and a τ-gating exemption for the P0 lane, and
	// each build's sim priority becomes its *weighted* value — so the sim's
	// worker preemption implements the hotfix lane displacing running
	// speculative builds. Nil reproduces the unprioritized planner exactly.
	Sched *sched.Policy
}

// feedback accumulates per-change speculation evidence.
type feedback struct {
	succ map[*change.Change]float64
	fail map[*change.Change]float64
}

// logit weights for one unit of speculation evidence. A failed build is
// discounted by its assumption count (the failure may be an assumed
// predecessor's fault, not the subject's).
const (
	fbSuccWeight = 1.2
	fbFailWeight = 2.5
)

// feedbackPredictor adjusts the inner model's P_succ with observed
// speculation outcomes (Bayes-style logit shift); P_conf passes through.
type feedbackPredictor struct {
	inner predict.Predictor
	fb    *feedback
}

// PredictSuccess implements predict.Predictor.
func (f feedbackPredictor) PredictSuccess(c *change.Change) float64 {
	p := f.inner.PredictSuccess(c)
	s, fl := f.fb.succ[c], f.fb.fail[c]
	if s == 0 && fl == 0 {
		return p
	}
	if p <= 0 || p >= 1 {
		return p // a certain predictor (the Oracle) needs no evidence
	}
	z := math.Log(p/(1-p)) + fbSuccWeight*s - fbFailWeight*fl
	return predict.Sigmoid(z)
}

// PredictConflict implements predict.Predictor.
func (f feedbackPredictor) PredictConflict(a, b *change.Change) float64 {
	return f.inner.PredictConflict(a, b)
}

// NewSpeculateAll returns the §4.1 speculate-everything baseline.
func NewSpeculateAll(w *workload.Workload) *Speculative {
	return &Speculative{
		Label:  "Speculate-all",
		Engine: speculation.New(predict.Static{Success: 0.5, Conflict: 0}),
		W:      w,
	}
}

// NewSubmitQueue returns the paper's system with the given predictor.
// Static predictions are memoized per change/pair (feature vectors never
// change within a simulated workload); on top of them, speculation feedback
// (§7.2's dynamic features) adapts P_succ as builds finish.
func NewSubmitQueue(w *workload.Workload, p predict.Predictor) *Speculative {
	fb := &feedback{succ: map[*change.Change]float64{}, fail: map[*change.Change]float64{}}
	return &Speculative{
		Label:    "SubmitQueue",
		Engine:   speculation.New(feedbackPredictor{inner: newMemoPredictor(p), fb: fb}),
		W:        w,
		feedback: fb,
	}
}

// memoPredictor caches predictions keyed by change pointers; safe because
// sim-side feature vectors never change after workload generation.
type memoPredictor struct {
	inner predict.Predictor
	succ  map[*change.Change]float64
	conf  map[[2]*change.Change]float64
}

func newMemoPredictor(p predict.Predictor) *memoPredictor {
	return &memoPredictor{
		inner: p,
		succ:  map[*change.Change]float64{},
		conf:  map[[2]*change.Change]float64{},
	}
}

// PredictSuccess implements predict.Predictor.
func (m *memoPredictor) PredictSuccess(c *change.Change) float64 {
	if v, ok := m.succ[c]; ok {
		return v
	}
	v := m.inner.PredictSuccess(c)
	m.succ[c] = v
	return v
}

// PredictConflict implements predict.Predictor.
func (m *memoPredictor) PredictConflict(a, b *change.Change) float64 {
	k := [2]*change.Change{a, b}
	if a.ID > b.ID {
		k = [2]*change.Change{b, a}
	}
	if v, ok := m.conf[k]; ok {
		return v
	}
	v := m.inner.PredictConflict(a, b)
	m.conf[k] = v
	return v
}

// Name implements sim.Strategy.
func (s *Speculative) Name() string { return s.Label }

// Plan implements sim.Strategy.
func (s *Speculative) Plan(st *sim.State) []sim.BuildSpec {
	// Fold newly finished builds into the speculation-feedback state.
	if s.feedback != nil {
		for ; s.scanned < len(st.Finished); s.scanned++ {
			fb := st.Finished[s.scanned]
			if len(fb.Spec.Batch) > 0 {
				continue
			}
			subj := s.W.Changes[fb.Spec.Subject].Meta
			if fb.OK {
				s.feedback.succ[subj]++
			} else {
				// A failed build blames the subject with confidence inverse
				// to how much it assumed.
				s.feedback.fail[subj] += 1 / float64(1+len(fb.Spec.Assumed))
			}
		}
	}
	if len(st.Pending) == 0 {
		return nil
	}
	// Assemble the engine's view: pending change metas plus the conflicting
	// predecessors the analyzer reports, as positions into the pending list.
	window := planWindow(st)
	pending := make([]*change.Change, len(window))
	pos := make(map[int]int, len(window)) // workload index -> pending position
	for k, i := range window {
		pending[k] = s.W.Changes[i].Meta
		pos[i] = k
	}
	preds := make([][]int, len(window))
	for k, i := range window {
		if st.UseAnalyzer {
			for j := range s.W.Changes[i].PotentialConflicts {
				if j < i {
					if pj, ok := pos[j]; ok {
						preds[k] = append(preds[k], pj)
					}
				}
			}
			sort.Ints(preds[k])
		} else {
			// Every earlier pending change conflicts. The speculation engine
			// only branches over the most recent MaxSpecDepth anyway, and in
			// this saturated regime P_commit estimates are insensitive to
			// predecessors beyond a small window — so cap the list and keep
			// planning O(p·window) instead of O(p²).
			lo := k - 2*speculation.DefaultMaxSpecDepth
			if lo < 0 {
				lo = 0
			}
			preds[k] = make([]int, 0, k-lo)
			for j := lo; j < k; j++ {
				preds[k] = append(preds[k], j)
			}
		}
	}
	var weights []float64
	var noSkip []bool
	if s.Sched != nil {
		weights, noSkip = s.Sched.Weights(pending, SimEpoch.Add(st.Now))
	}
	plan := s.Engine.Plan(speculation.Request{
		Pending: pending,
		Preds:   preds,
		Budget:  st.Workers,
		Weights: weights,
		NoSkip:  noSkip,
	})
	s.SkippedBranches += plan.BranchesSkipped
	s.SkippedBuilds += plan.BuildsSkipped
	out := make([]sim.BuildSpec, 0, len(plan.Builds))
	for _, b := range plan.Builds {
		prio := b.PNeeded
		if weights != nil {
			// Weighted value, not P_needed: a P0's build must outrank — and
			// preempt — every other lane's at the worker pool.
			prio = b.Value
		}
		spec := sim.BuildSpec{
			Subject:  window[b.SubjectIdx],
			Priority: prio,
		}
		for _, a := range b.AssumedIdx {
			spec.Assumed = append(spec.Assumed, window[a])
		}
		for _, r := range b.AssumedRejectedIdx {
			spec.AssumedRejected = append(spec.AssumedRejected, window[r])
		}
		out = append(out, spec)
	}
	if weights != nil {
		// Hotfix bypass: a P0 gated behind pending conflicting predecessors
		// would otherwise wait for its whole predecessor cascade to build
		// and decide — worker-pool-bound under a deep backlog, exactly when
		// the hotfix is most urgent. Instead the P0 lane jumps the queue:
		// one reorder build against bare master, committed ahead of the
		// work in front of it. The green invariant survives out-of-order
		// commits for free — a displaced predecessor's finished builds no
		// longer normalize against the moved master, so it rebuilds on top
		// of the hotfix and a real conflict turns into its rejection, never
		// a red master. The cost (invalidated predecessor speculation) is
		// the preemption the P0 lane exists to spend.
		var bypass []sim.BuildSpec
		for k, c := range pending {
			if c.Class != change.ClassHotfix {
				continue
			}
			i := window[k]
			if len(st.PendingConflictingPredecessors(i)) == 0 {
				continue // the ordinary plan already decides it first
			}
			bypass = append(bypass, sim.BuildSpec{
				Subject:      i,
				AllowReorder: true,
				Priority:     s.Sched.ClassWeight(change.ClassHotfix),
			})
		}
		out = append(bypass, out...)
	}
	if s.ReorderSmall {
		out = append(out, s.reorderSpecs(st)...)
	}
	return out
}

// reorderSpecs synthesizes §10 reorder builds: for each pending change much
// smaller than the conflicting work ahead of it, a no-assumption build that
// may commit immediately.
func (s *Speculative) reorderSpecs(st *sim.State) []sim.BuildSpec {
	ratio := s.ReorderRatio
	if ratio <= 0 {
		ratio = 0.5
	}
	var out []sim.BuildSpec
	for _, i := range st.Pending {
		preds := st.PendingConflictingPredecessors(i)
		if len(preds) == 0 {
			continue // the ordinary plan already decides it
		}
		var ahead float64
		for _, j := range preds {
			ahead += s.W.Changes[j].Duration.Minutes()
		}
		own := s.W.Changes[i].Duration.Minutes()
		if own > ratio*ahead {
			continue
		}
		out = append(out, sim.BuildSpec{
			Subject:      i,
			AllowReorder: true,
			Priority:     0.9, // hedge: high but below certain decisive builds
		})
	}
	return out
}

// Batch groups up to BatchSize ready changes per conflict component and
// builds them as one unit; on failure it bisects the batch (Chromium
// commit-queue). With BatchSize 1 it degenerates to SingleQueue.
type Batch struct {
	BatchSize int
}

// Name implements sim.Strategy.
func (b *Batch) Name() string { return fmt.Sprintf("Batch-%d", b.size()) }

func (b *Batch) size() int {
	if b.BatchSize < 1 {
		return 4 // zero value: the Chromium CQ's default group size
	}
	return b.BatchSize
}

// Plan implements sim.Strategy.
func (b *Batch) Plan(st *sim.State) []sim.BuildSpec {
	// Attributed failures first: when the build system identified the batch
	// member that failed (FailedMember — the real path's
	// Result.FailedTarget), that change is evicted to build alone and its
	// innocent batchmates re-batch at full size, instead of everyone paying
	// the blind halving cascade.
	solo := b.evicted(st)
	// Group ready changes greedily: a change joins the current batch if it
	// has no pending conflicting predecessor outside the batch.
	var out []sim.BuildSpec
	curSet := map[int]bool{}
	var cur []int
	flush := func() {
		if len(cur) == 0 {
			return
		}
		batch := append([]int(nil), cur...)
		out = append(out, sim.BuildSpec{
			Subject:  batch[len(batch)-1],
			Batch:    batch,
			Priority: -float64(batch[0]),
		})
		cur = nil
		curSet = map[int]bool{}
	}
	for _, i := range st.Pending {
		if solo[i] {
			// The evicted member builds alone — decisively, so only once its
			// own conflicting predecessors are resolved.
			if !st.HasPendingConflictingPredecessor(i) {
				out = append(out, sim.BuildSpec{Subject: i, Priority: -float64(i)})
			}
			continue
		}
		// A change may only join the batch that already contains all of its
		// pending conflicting predecessors; cross-batch dependencies would
		// break atomic batch commits.
		ready := true
		for _, j := range st.PendingConflictingPredecessors(i) {
			if !curSet[j] {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		// A failed batch containing i means we must split: fall back to
		// smaller batches after a recent failure.
		cur = append(cur, i)
		curSet[i] = true
		if len(cur) >= b.effectiveSize(st, cur) {
			flush()
		}
	}
	flush()
	return out
}

// evicted returns the still-pending members recent failed batches attribute
// their failure to: each builds as a singleton whose failure rejects only
// itself.
func (b *Batch) evicted(st *sim.State) map[int]bool {
	solo := map[int]bool{}
	for k := len(st.Finished) - 1; k >= 0 && k >= len(st.Finished)-64; k-- {
		fb := st.Finished[k]
		if fb.OK || len(fb.Spec.Batch) < 2 || fb.FailedMember < 0 {
			continue
		}
		if st.IsPending(fb.FailedMember) {
			solo[fb.FailedMember] = true
		}
	}
	return solo
}

// effectiveSize implements bisect-on-failure: a change that appeared in a
// failed batch build may only join a batch half that batch's size, so
// repeated failures shrink to singletons, whose failures the engine resolves
// as terminal rejections. The halving applies even when the failure was
// attributed (the guilty member is evicted separately, see evicted):
// conflicts cluster in submission windows, so the survivors of a failed
// batch re-roll the same dice and deserve the same caution.
func (b *Batch) effectiveSize(st *sim.State, cur []int) int {
	size := b.size()
	for k := len(st.Finished) - 1; k >= 0 && k >= len(st.Finished)-64; k-- {
		fb := st.Finished[k]
		if fb.OK || len(fb.Spec.Batch) < 2 {
			continue
		}
		for _, m := range fb.Spec.Batch {
			for _, c := range cur {
				if m == c {
					half := len(fb.Spec.Batch) / 2
					if half < 1 {
						half = 1
					}
					if half < size {
						size = half
					}
				}
			}
		}
	}
	return size
}

// AdaptiveBatch is the sched-layer batching strategy (DESIGN.md §4l): it
// groups low-risk conflict-disjoint changes into one speculative build, with
// the batch size chosen online by sched.Batcher's expected-cost model over
// the predictor's success and pairwise conflict probabilities — against the
// fixed Chromium-style Batch baseline. A failed batch is bisected
// automatically: the attributed guilty member is evicted to build alone,
// otherwise the halves re-enqueue as batches, either way at the failed
// batch's inherited priority.
//
// An AdaptiveBatch instance carries per-run bisection state and must not be
// shared across sim.Run calls.
type AdaptiveBatch struct {
	W *workload.Workload
	// B sizes batches; zero fields fall back to sched's defaults.
	B sched.Batcher

	pred predict.Predictor

	// forced maps a change index to the group it must build with: pinned
	// planner groups (kept stable while they pend) and bisection fragments
	// of failed batches.
	forced  map[int]*abFragment
	scanned int // st.Finished prefix already folded

	// obsFail/predFail accumulate observed vs predicted failure mass over
	// this run's finished builds, driving calibration().
	obsFail  float64
	predFail float64

	// Evictions counts attributed guilty-member evictions; Halvings counts
	// unattributed halving splits. The ablation-sched experiment reports
	// both.
	Evictions int
	Halvings  int
}

// abFragment is one piece of a bisected batch, re-enqueued at the parent
// build's priority.
type abFragment struct {
	members []int
	prio    float64
}

// NewAdaptiveBatch builds the strategy with memoized predictions.
func NewAdaptiveBatch(w *workload.Workload, p predict.Predictor, b sched.Batcher) *AdaptiveBatch {
	return &AdaptiveBatch{
		W:      w,
		B:      b,
		pred:   newMemoPredictor(p),
		forced: map[int]*abFragment{},
	}
}

// Name implements sim.Strategy.
func (a *AdaptiveBatch) Name() string { return "Adaptive-Batch" }

// Plan implements sim.Strategy.
func (a *AdaptiveBatch) Plan(st *sim.State) []sim.BuildSpec {
	a.fold(st)

	// Ready = no pending conflicting predecessors at all. Members of one
	// batch are therefore pairwise analyzer-disjoint (if i<j conflicted, j
	// would have i as a pending predecessor), which is what lets the whole
	// batch commit atomically without assumption chains.
	// Running batches are pinned: re-emitting a running build's exact spec
	// keeps it in the desired set, while regrouping its members (because a
	// neighbor decided or calibration moved) would change the desired
	// build's identity and churn-abort work that was on track. The pin set
	// is rebuilt from st.Running each plan — only work actually on a
	// worker is protected; everything queued regroups freely.
	pinnedRun := map[int]int{} // member -> st.Running index
	for ri, rb := range st.Running {
		if len(rb.Spec.Batch) > 1 {
			for _, m := range rb.Spec.Batch {
				pinnedRun[m] = ri
			}
		}
	}

	var out []sim.BuildSpec
	emitted := map[*abFragment]bool{}
	emittedRun := map[int]bool{}
	var free []int
	blocked := false
	for _, i := range st.Pending {
		if st.HasPendingConflictingPredecessor(i) {
			blocked = true
			continue
		}
		if fr := a.forced[i]; fr != nil {
			if !emitted[fr] {
				emitted[fr] = true
				out = append(out, a.fragmentSpec(st, fr))
			}
			continue
		}
		if ri, ok := pinnedRun[i]; ok {
			if !emittedRun[ri] {
				emittedRun[ri] = true
				out = append(out, st.Running[ri].Spec)
			}
			continue
		}
		free = append(free, i)
	}

	// Effective success folds two corrections into the batcher's view.
	//
	// Doom risk: a ready change whose potential-conflict partner already
	// committed can fail its build no matter how reliable it is in
	// isolation — the predictor's isolated P_succ is blind to exactly the
	// members that poison large batches. Discounting by the predicted
	// no-conflict probability against every committed partner pushes the
	// doomed below the batcher's MinSucc floor, so they build alone and
	// their failure never taxes innocents.
	//
	// Calibration: a logistic model saturates well below the true success
	// rate of genuinely reliable traffic (it cannot say 0.999 from these
	// features), and the inflated per-member failure rate caps the cost
	// model's batch size far under what the traffic supports. calibration()
	// rescales the predicted failure mass by the observed-vs-predicted
	// failure ratio of this run's own finished builds — the "adaptive" in
	// adaptive batching.
	beta := a.calibration()
	pSucc := func(i int) float64 {
		p := 1 - (1-a.pred.PredictSuccess(a.W.Changes[i].Meta))*beta
		for j := range a.W.Changes[i].PotentialConflicts {
			if st.IsCommitted(j) {
				p *= 1 - beta*a.pred.PredictConflict(a.W.Changes[i].Meta, a.W.Changes[j].Meta)
			}
		}
		if p < 0 {
			p = 0
		}
		return p
	}
	// The pairwise term consults the analyzer before the model: a conflict
	// requires overlapping build targets, so for an analyzer-disjoint pair
	// the true probability is zero and the model's logistic floor (~1% on
	// any pair, from features alone) is pure noise — accumulated over a
	// batch's O(k²) pairs it would stall growth long before the traffic
	// warrants it. Only analyzer-flagged pairs get the model's (calibrated)
	// estimate. Ready candidates are pairwise disjoint by construction, so
	// in practice this term prices fragments and future non-disjoint
	// groupings, not the main batch run.
	pConf := func(i, j int) float64 {
		if _, flagged := a.W.Changes[i].PotentialConflicts[j]; !flagged {
			return 0
		}
		return beta * a.pred.PredictConflict(a.W.Changes[i].Meta, a.W.Changes[j].Meta)
	}
	// Safest-first ordering: the batcher partitions candidates in the
	// given order, and a below-floor member flushes the batch being grown.
	// Sorted by effective success, risky candidates cluster at the tail in
	// their own small groups instead of cutting healthy runs short.
	sort.SliceStable(free, func(x, y int) bool {
		px, py := pSucc(free[x]), pSucc(free[y])
		if px != py {
			return px > py
		}
		return free[x] < free[y]
	})
	// Pooling: when running builds will commit members whose completion
	// unblocks more candidates, a small group is held back rather than
	// built — it can only grow, and a build spent on two changes now is a
	// build not spent on twelve a cycle later. Risky singletons are exempt
	// (their dedicated build is inevitable, so it may as well use idle
	// capacity), and the hold lifts the moment nothing is running or
	// nothing is left to unblock, so the queue always drains.
	mb := a.B.MaxBatch
	if mb <= 0 {
		mb = 16
	}
	ms := a.B.MinSucc
	if ms <= 0 {
		ms = 0.5
	}
	pool := blocked && len(st.Running) > 0
	for _, group := range a.B.Plan(free, pSucc, pConf) {
		if pool && len(group) < mb/2 && !(len(group) == 1 && pSucc(group[0]) < ms) {
			continue
		}
		out = append(out, groupSpec(group, -float64(group[0])))
	}
	return out
}

// calibration returns the multiplier applied to predicted failure mass:
// observed failures over predicted failures across this run's finished
// builds, smoothed with one pseudo-failure so an early lucky streak cannot
// collapse it to zero, and clamped to [1/8, 4]. Reliable traffic drives it
// below 1, letting batches grow toward what outcomes justify; a model that
// is too optimistic drives it above 1 and shrinks them.
// CalibrationFactor exposes the current calibration multiplier (see
// calibration) for dashboards and experiment reports.
func (a *AdaptiveBatch) CalibrationFactor() float64 { return a.calibration() }

func (a *AdaptiveBatch) calibration() float64 {
	if a.predFail < 2 {
		return 1
	}
	beta := (a.obsFail + 1) / (a.predFail + 1)
	if beta < 0.125 {
		beta = 0.125
	}
	if beta > 4 {
		beta = 4
	}
	return beta
}

// fold ingests newly finished builds: each failed multi-member batch is
// bisected (guilty eviction when attributed, halving otherwise) and the
// fragments pinned so members re-build together at inherited priority.
func (a *AdaptiveBatch) fold(st *sim.State) {
	for ; a.scanned < len(st.Finished); a.scanned++ {
		fb := st.Finished[a.scanned]
		// Calibration bookkeeping, on multi-member batch builds only: their
		// failure rate is exactly what the cost model predicts from member
		// success and pair conflict mass. Singleton builds are excluded —
		// retries, verification re-runs, and doom-exiled members fail for
		// reasons the isolated predictions never modeled, and folding those
		// in would push the calibration the wrong way.
		if len(fb.Spec.Batch) > 1 {
			pOK := 1.0
			for _, m := range fb.Spec.Batch {
				pOK *= a.pred.PredictSuccess(a.W.Changes[m].Meta)
				// Doom mass vs already-committed flagged partners, the same
				// failure mode the planning closure discounts — predicted and
				// observed mass must cover identical modes or the ratio
				// drifts. Commit state at fold time slightly postdates the
				// build's start; the overcount is second-order.
				for j := range a.W.Changes[m].PotentialConflicts {
					if st.IsCommitted(j) {
						pOK *= 1 - a.pred.PredictConflict(a.W.Changes[m].Meta, a.W.Changes[j].Meta)
					}
				}
			}
			// Pair mass only for analyzer-flagged intra-batch pairs,
			// mirroring the Plan closure: disjoint pairs cannot conflict, so
			// folding the model's logistic floor for them would inflate the
			// predicted mass the calibration divides by.
			for x := 0; x < len(fb.Spec.Batch); x++ {
				for y := x + 1; y < len(fb.Spec.Batch); y++ {
					bx, by := fb.Spec.Batch[x], fb.Spec.Batch[y]
					if a.W.Changes[bx].PotentialConflicts[by] {
						pOK *= 1 - a.pred.PredictConflict(a.W.Changes[bx].Meta, a.W.Changes[by].Meta)
					}
				}
			}
			a.predFail += 1 - pOK
			if !fb.OK {
				a.obsFail++
			}
		}
		if fb.OK || len(fb.Spec.Batch) < 2 {
			continue
		}
		guilty := -1
		for p, m := range fb.Spec.Batch {
			if m == fb.FailedMember {
				guilty = p
				break
			}
		}
		if guilty >= 0 {
			a.Evictions++
		} else {
			a.Halvings++
		}
		for _, part := range a.B.Bisect(fb.Spec.Batch, guilty) {
			fr := &abFragment{members: part, prio: fb.Spec.Priority}
			for _, m := range part {
				a.forced[m] = fr
			}
		}
	}
}

// fragmentSpec renders a bisection fragment, dropping members decided since
// the split.
func (a *AdaptiveBatch) fragmentSpec(st *sim.State, fr *abFragment) sim.BuildSpec {
	live := make([]int, 0, len(fr.members))
	for _, m := range fr.members {
		if st.IsPending(m) {
			live = append(live, m)
		}
	}
	return groupSpec(live, fr.prio)
}

// groupSpec renders one conflict-disjoint group: a plain build for a
// singleton (its failure is a terminal rejection), an atomic batch
// otherwise.
func groupSpec(members []int, prio float64) sim.BuildSpec {
	if len(members) == 1 {
		return sim.BuildSpec{Subject: members[0], Priority: prio}
	}
	return sim.BuildSpec{
		Subject:  members[len(members)-1],
		Batch:    append([]int(nil), members...),
		Priority: prio,
	}
}

// Interface checks.
var (
	_ sim.Strategy = (*Oracle)(nil)
	_ sim.Strategy = SingleQueue{}
	_ sim.Strategy = Optimistic{}
	_ sim.Strategy = (*Speculative)(nil)
	_ sim.Strategy = (*Batch)(nil)
	_ sim.Strategy = (*AdaptiveBatch)(nil)
)
