package strategies

import (
	"testing"

	"mastergreen/internal/change"
	"mastergreen/internal/predict"
	"mastergreen/internal/sim"
	"mastergreen/internal/workload"
)

func testWorkload(seed int64, n int, rate float64) *workload.Workload {
	return workload.Generate(workload.IOSConfig(seed, n, rate))
}

func runAll(t *testing.T, w *workload.Workload, workers int) map[string]*sim.Result {
	t.Helper()
	out := map[string]*sim.Result{}
	strats := []sim.Strategy{
		NewOracle(w),
		SingleQueue{},
		Optimistic{},
		NewSpeculateAll(w),
		NewSubmitQueue(w, w.OraclePredictor()),
	}
	for _, s := range strats {
		res := sim.Run(w, s, sim.Config{Workers: workers, UseAnalyzer: true})
		if res.GreenViolations != 0 {
			t.Fatalf("%s: %d green violations", s.Name(), res.GreenViolations)
		}
		if res.Committed+res.Rejected != len(w.Changes) {
			t.Fatalf("%s: decided %d of %d (undecided %d)", s.Name(),
				res.Committed+res.Rejected, len(w.Changes), res.Undecided)
		}
		out[s.Name()] = res
	}
	return out
}

func TestAllStrategiesAgreeOnOutcomes(t *testing.T) {
	// Serializability makes final outcomes scheduling independent: every
	// strategy commits exactly the same set of changes.
	w := testWorkload(1, 300, 200)
	results := runAll(t, w, 150)
	want := results["Oracle"].Committed
	for name, res := range results {
		if res.Committed != want {
			t.Errorf("%s committed %d, oracle %d", name, res.Committed, want)
		}
	}
	eventual := w.EventualOutcomes()
	n := 0
	for _, v := range eventual {
		if v {
			n++
		}
	}
	if want != n {
		t.Fatalf("oracle committed %d, ground truth %d", want, n)
	}
}

func TestOracleIsFastest(t *testing.T) {
	w := testWorkload(2, 300, 250)
	results := runAll(t, w, 150)
	oracle := results["Oracle"].Summary().P95
	for name, res := range results {
		if res.Summary().P95+1e-9 < oracle {
			t.Errorf("%s P95 %.1f beats Oracle %.1f", name, res.Summary().P95, oracle)
		}
	}
}

func TestPaperOrdering(t *testing.T) {
	// The qualitative result of Fig. 11/12: SubmitQueue ≲ small multiple of
	// Oracle; Speculate-all and Optimistic are much worse; Single-Queue is
	// the worst.
	w := testWorkload(3, 500, 300)
	results := runAll(t, w, 200)
	p95 := func(name string) float64 { return results[name].Summary().P95 }

	if p95("SubmitQueue") > 6*p95("Oracle") {
		t.Errorf("SubmitQueue %.1f too slow vs Oracle %.1f", p95("SubmitQueue"), p95("Oracle"))
	}
	if p95("Single-Queue") < p95("SubmitQueue") {
		t.Errorf("Single-Queue %.1f should trail SubmitQueue %.1f",
			p95("Single-Queue"), p95("SubmitQueue"))
	}
	if p95("Speculate-all") < p95("SubmitQueue") {
		t.Errorf("Speculate-all %.1f should trail SubmitQueue %.1f",
			p95("Speculate-all"), p95("SubmitQueue"))
	}
	if p95("Single-Queue") < p95("Optimistic") {
		t.Errorf("Single-Queue %.1f should trail Optimistic %.1f",
			p95("Single-Queue"), p95("Optimistic"))
	}
}

func TestOracleSchedulesOnlyNeededBuilds(t *testing.T) {
	// The oracle never aborts and finishes at most one build per change.
	w := testWorkload(4, 200, 150)
	res := sim.Run(w, NewOracle(w), sim.Config{Workers: 64, UseAnalyzer: true})
	if res.BuildsAborted != 0 {
		t.Fatalf("oracle aborted %d builds", res.BuildsAborted)
	}
	if res.BuildsFinished > len(w.Changes) {
		t.Fatalf("oracle finished %d builds for %d changes", res.BuildsFinished, len(w.Changes))
	}
}

func TestSpeculateAllStartsMoreBuilds(t *testing.T) {
	w := testWorkload(5, 200, 250)
	all := sim.Run(w, NewSpeculateAll(w), sim.Config{Workers: 64, UseAnalyzer: true})
	oracle := sim.Run(w, NewOracle(w), sim.Config{Workers: 64, UseAnalyzer: true})
	if all.BuildsStarted <= oracle.BuildsStarted {
		t.Fatalf("speculate-all started %d, oracle %d", all.BuildsStarted, oracle.BuildsStarted)
	}
}

func TestSubmitQueueWithLearnedModel(t *testing.T) {
	// Train on one workload, run on another: the learned SubmitQueue should
	// land between Oracle and Speculate-all.
	train := testWorkload(6, 4000, 300)
	X, y := train.TrainingData()
	m, err := predict.Train(predict.SuccessFeatureNames, X, y, predict.TrainConfig{Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	cx, cy := train.ConflictTrainingData(1)
	cm, err := predict.Train(predict.ConflictFeatureNames, cx, cy, predict.TrainConfig{Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	learned := predict.Learned{SuccessModel: m, ConflictModel: cm}

	w := testWorkload(7, 300, 250)
	sq := sim.Run(w, NewSubmitQueue(w, learned), sim.Config{Workers: 150, UseAnalyzer: true})
	oracle := sim.Run(w, NewOracle(w), sim.Config{Workers: 150, UseAnalyzer: true})
	specAll := sim.Run(w, NewSpeculateAll(w), sim.Config{Workers: 150, UseAnalyzer: true})
	if sq.GreenViolations != 0 || sq.Committed != oracle.Committed {
		t.Fatalf("learned SQ: %+v vs oracle %+v", sq, oracle)
	}
	if sq.Summary().P95 > specAll.Summary().P95 {
		t.Fatalf("learned SubmitQueue P95 %.1f worse than Speculate-all %.1f",
			sq.Summary().P95, specAll.Summary().P95)
	}
}

func TestBatchStrategyDrainsAndCommits(t *testing.T) {
	w := testWorkload(8, 200, 200)
	b := &Batch{BatchSize: 4}
	res := sim.Run(w, b, sim.Config{Workers: 32, UseAnalyzer: true})
	if res.GreenViolations != 0 {
		t.Fatalf("green violations: %d", res.GreenViolations)
	}
	if res.Committed+res.Rejected != len(w.Changes) {
		t.Fatalf("decided %d of %d", res.Committed+res.Rejected, len(w.Changes))
	}
	// Batching must not commit changes that individually fail.
	eventual := w.EventualOutcomes()
	maxCommits := 0
	for _, v := range eventual {
		if v {
			maxCommits++
		}
	}
	if res.Committed > maxCommits {
		t.Fatalf("batch committed %d > ground-truth max %d", res.Committed, maxCommits)
	}
}

func TestBatchNames(t *testing.T) {
	if (&Batch{BatchSize: 8}).Name() != "Batch-8" {
		t.Fatal("bad name")
	}
	if (&Batch{}).Name() != "Batch-4" {
		t.Fatal("default size name")
	}
}

func TestIndexOf(t *testing.T) {
	if indexOf("c000123") != 123 {
		t.Fatalf("indexOf = %d", indexOf("c000123"))
	}
	if indexOf("bogus") != -1 {
		t.Fatalf("indexOf bogus = %d", indexOf("bogus"))
	}
}

func TestMemoPredictorCaches(t *testing.T) {
	calls := 0
	inner := countingPredictor{&calls}
	m := newMemoPredictor(inner)
	w := testWorkload(9, 10, 100)
	a, b := w.Changes[0].Meta, w.Changes[1].Meta
	m.PredictSuccess(a)
	m.PredictSuccess(a)
	m.PredictConflict(a, b)
	m.PredictConflict(b, a) // symmetric key
	if calls != 2 {
		t.Fatalf("inner calls = %d, want 2", calls)
	}
}

type countingPredictor struct{ calls *int }

func (c countingPredictor) PredictSuccess(*change.Change) float64 {
	*c.calls++
	return 0.5
}

func (c countingPredictor) PredictConflict(a, b *change.Change) float64 {
	*c.calls++
	return 0.1
}
