// Package textplot renders the paper's figures as ASCII art so the benchmark
// harness can regenerate every figure in a terminal: line/CDF plots,
// worker×rate heatmaps (Fig. 11), and grouped bar series (Figs. 12–14).
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line in a line plot.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LinePlot renders one or more series on a shared grid of the given
// width×height (in characters). Each series uses its own glyph.
func LinePlot(title string, width, height int, series ...Series) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = g
		}
	}
	fmt.Fprintf(&b, "%8.2f ┤\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "         │%s\n", string(row))
	}
	fmt.Fprintf(&b, "%8.2f └%s\n", minY, strings.Repeat("─", width))
	fmt.Fprintf(&b, "          %-12.2f%*s%.2f\n", minX, width-24, "", maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "          %c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// Heatmap renders a matrix of values with row/column labels, mimicking the
// paper's Fig. 11 grids (rows = changes/hour, cols = workers).
// cells[r][c] corresponds to rowLabels[r], colLabels[c].
func Heatmap(title string, rowLabels, colLabels []string, cells [][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	rowW := 0
	for _, r := range rowLabels {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := 7
	fmt.Fprintf(&b, "%*s", rowW+1, "")
	for _, c := range colLabels {
		fmt.Fprintf(&b, "%*s", colW, c)
	}
	b.WriteByte('\n')
	for r, row := range cells {
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		fmt.Fprintf(&b, "%*s ", rowW, label)
		for _, v := range row {
			fmt.Fprintf(&b, "%*.2f", colW, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BarGroup is a named list of values aligned with a shared category axis.
type BarGroup struct {
	Name   string
	Values []float64
}

// Bars renders grouped horizontal bars (one row per category, one bar per
// group), scaled so the longest bar spans width characters.
func Bars(title string, categories []string, width int, groups ...BarGroup) string {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	for _, g := range groups {
		for _, v := range g.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if maxV == 0 {
		maxV = 1
	}
	catW := 0
	for _, c := range categories {
		if len(c) > catW {
			catW = len(c)
		}
	}
	nameW := 0
	for _, g := range groups {
		if len(g.Name) > nameW {
			nameW = len(g.Name)
		}
	}
	for ci, cat := range categories {
		for gi, g := range groups {
			v := 0.0
			if ci < len(g.Values) {
				v = g.Values[ci]
			}
			n := int(v / maxV * float64(width))
			if n < 0 {
				n = 0
			}
			label := ""
			if gi == 0 {
				label = cat
			}
			fmt.Fprintf(&b, "%*s %*s │%s %.3f\n", catW, label, nameW, g.Name,
				strings.Repeat("█", n), v)
		}
	}
	return b.String()
}

// Table renders a simple aligned table with a header row.
func Table(title string, header []string, rows [][]string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
