package textplot

import (
	"strings"
	"testing"
)

func TestLinePlotBasics(t *testing.T) {
	out := LinePlot("fig", 40, 10,
		Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		Series{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
	)
	if !strings.Contains(out, "fig") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* = a") || !strings.Contains(out, "o = b") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no plotted glyphs")
	}
}

func TestLinePlotEmpty(t *testing.T) {
	out := LinePlot("empty", 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("expected no-data marker:\n%s", out)
	}
}

func TestLinePlotDegenerateRange(t *testing.T) {
	// Single point: both axes degenerate; must not panic or divide by zero.
	out := LinePlot("pt", 2, 2, Series{Name: "p", X: []float64{5}, Y: []float64{5}})
	if !strings.Contains(out, "p") {
		t.Fatal("missing series name")
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("hm", []string{"500", "400"}, []string{"100", "200"},
		[][]float64{{2.56, 1.77}, {2.57, 1.87}})
	for _, want := range []string{"hm", "500", "400", "100", "200", "2.56", "1.87"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHeatmapRaggedLabels(t *testing.T) {
	// More cell rows than labels must not panic.
	out := Heatmap("hm", []string{"only"}, []string{"c"}, [][]float64{{1}, {2}})
	if !strings.Contains(out, "2.00") {
		t.Fatalf("missing unlabeled row:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("fig12", []string{"100w", "200w"}, 20,
		BarGroup{Name: "SubmitQueue", Values: []float64{0.4, 0.8}},
		BarGroup{Name: "Oracle", Values: []float64{1.0, 1.0}},
	)
	for _, want := range []string{"fig12", "100w", "SubmitQueue", "Oracle", "0.400", "1.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("z", []string{"a"}, 10, BarGroup{Name: "g", Values: []float64{0}})
	if !strings.Contains(out, "0.000") {
		t.Fatalf("zero bar missing:\n%s", out)
	}
}

func TestBarsShortValueSlice(t *testing.T) {
	// Group with fewer values than categories renders zeros, no panic.
	out := Bars("s", []string{"a", "b"}, 10, BarGroup{Name: "g", Values: []float64{1}})
	if strings.Count(out, "│") != 2 {
		t.Fatalf("expected two bars:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table("t", []string{"name", "value"}, [][]string{{"p50", "1.26"}, {"p95", "1.22"}})
	for _, want := range []string{"name", "value", "p50", "1.26", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableRaggedRow(t *testing.T) {
	out := Table("", []string{"a"}, [][]string{{"x", "extra"}})
	if !strings.Contains(out, "extra") {
		t.Fatalf("extra cell lost:\n%s", out)
	}
}
