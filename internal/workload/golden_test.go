package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// goldenDigest serializes the ordering-relevant fields of every generated
// change into one digest: any drift in the generator's draw sequence moves
// it.
func goldenDigest(w *Workload) string {
	h := sha256.New()
	for _, c := range w.Changes {
		fmt.Fprintf(h, "%s|%d|%d|%v|%v\n", c.ID, c.SubmitAt, c.Duration, c.Succeeds, c.Components)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenTrace pins the generator's output for the default iOS preset:
// the injected-RNG refactor (Config.Rand) must not move a single draw, and
// future generator edits that change the stream must update this constant
// deliberately.
func TestGoldenTrace(t *testing.T) {
	const wantDigest = "3bc2eea818988084c61a77f3bd864d48457d75624678abad23d713fca30c96bd"

	cfg := IOSConfig(42, 500, 300)
	got := goldenDigest(Generate(cfg))
	if got != wantDigest {
		t.Errorf("golden trace drifted:\n got %s\nwant %s", got, wantDigest)
	}

	// An explicitly injected RNG with the same seed must reproduce the
	// identical stream — the injection seam may not perturb the draws.
	cfg.Rand = rand.New(rand.NewSource(42))
	if injected := goldenDigest(Generate(cfg)); injected != got {
		t.Errorf("injected RNG with same seed diverged:\n got %s\nwant %s", injected, got)
	}

	// And generating twice is draw-for-draw stable.
	if again := goldenDigest(Generate(IOSConfig(42, 500, 300))); again != got {
		t.Errorf("second generation diverged:\n got %s\nwant %s", again, got)
	}
}
