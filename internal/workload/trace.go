package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// tracefile is the on-disk form of a workload: enough to replay the exact
// change stream (arrivals, durations, ground truth, model features) in a
// different process — the equivalent of the paper replaying recorded
// production changes (§8.1).
type traceFile struct {
	Version int           `json:"version"`
	Cfg     Config        `json:"config"`
	Changes []traceChange `json:"changes"`
}

type traceChange struct {
	ID         change.ID     `json:"id"`
	SubmitAt   time.Duration `json:"submit_at_ns"`
	Duration   time.Duration `json:"duration_ns"`
	Components []int         `json:"components"`
	Succeeds   bool          `json:"succeeds"`
	Potential  []int         `json:"potential_conflicts"`
	Real       []int         `json:"real_conflicts"`

	// Feature-bearing metadata (flattened from change.Change).
	Author   change.Developer `json:"author"`
	Stats    change.Stats     `json:"stats"`
	Revision change.Revision  `json:"revision"`
	Paths    []string         `json:"paths"`
}

// Export writes the workload as a self-contained JSON trace.
func (w *Workload) Export(out io.Writer) error {
	tf := traceFile{Version: 1, Cfg: w.Cfg}
	for _, c := range w.Changes {
		tc := traceChange{
			ID:         c.ID,
			SubmitAt:   c.SubmitAt,
			Duration:   c.Duration,
			Components: c.Components,
			Succeeds:   c.Succeeds,
			Author:     c.Meta.Author,
			Stats:      c.Meta.Stats,
			Paths:      c.Meta.Patch.Paths(),
		}
		if c.Meta.Revision != nil {
			tc.Revision = *c.Meta.Revision
		}
		for j := range c.PotentialConflicts {
			tc.Potential = append(tc.Potential, j)
		}
		for j := range c.RealConflicts {
			tc.Real = append(tc.Real, j)
		}
		tf.Changes = append(tf.Changes, tc)
	}
	enc := json.NewEncoder(out)
	return enc.Encode(tf)
}

// Import reads a trace written by Export.
func Import(in io.Reader) (*Workload, error) {
	var tf traceFile
	if err := json.NewDecoder(in).Decode(&tf); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	if tf.Version != 1 {
		return nil, fmt.Errorf("workload: unsupported trace version %d", tf.Version)
	}
	w := &Workload{Cfg: tf.Cfg}
	for i, tc := range tf.Changes {
		rev := tc.Revision
		meta := &change.Change{
			ID:       tc.ID,
			Author:   tc.Author,
			Stats:    tc.Stats,
			Revision: &rev,
		}
		// Rebuild the patch from paths (contents are immaterial to features).
		for _, p := range tc.Paths {
			meta.Patch.Changes = append(meta.Patch.Changes, patchFileFor(p, i))
		}
		meta.BuildSteps = change.DefaultBuildSteps()
		c := &Change{
			Index:              i,
			ID:                 tc.ID,
			SubmitAt:           tc.SubmitAt,
			Duration:           tc.Duration,
			Components:         tc.Components,
			Succeeds:           tc.Succeeds,
			Meta:               meta,
			PotentialConflicts: map[int]bool{},
			RealConflicts:      map[int]bool{},
		}
		for _, j := range tc.Potential {
			c.PotentialConflicts[j] = true
		}
		for _, j := range tc.Real {
			c.RealConflicts[j] = true
		}
		w.Changes = append(w.Changes, c)
	}
	// Validate symmetry of conflict relations.
	for _, c := range w.Changes {
		for j := range c.RealConflicts {
			if j < 0 || j >= len(w.Changes) {
				return nil, fmt.Errorf("workload: change %d real-conflicts with out-of-range %d", c.Index, j)
			}
			if !c.PotentialConflicts[j] {
				return nil, fmt.Errorf("workload: change %d real conflict %d is not potential", c.Index, j)
			}
			if !w.Changes[j].RealConflicts[c.Index] {
				return nil, fmt.Errorf("workload: asymmetric real conflict %d-%d", c.Index, j)
			}
		}
	}
	return w, nil
}

// patchFileFor synthesizes a file change for a replayed path.
func patchFileFor(path string, i int) repo.FileChange {
	return repo.FileChange{Path: path, Op: repo.OpCreate, NewContent: fmt.Sprintf("replayed %d", i)}
}
