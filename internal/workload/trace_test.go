package workload

import (
	"bytes"
	"strings"
	"testing"

	"mastergreen/internal/predict"
)

func TestTraceRoundTrip(t *testing.T) {
	w := Generate(Config{Seed: 3, Count: 300, RatePerHour: 200})
	var buf bytes.Buffer
	if err := w.Export(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Changes) != len(w.Changes) {
		t.Fatalf("count = %d, want %d", len(got.Changes), len(w.Changes))
	}
	for i, c := range w.Changes {
		g := got.Changes[i]
		if g.ID != c.ID || g.SubmitAt != c.SubmitAt || g.Duration != c.Duration || g.Succeeds != c.Succeeds {
			t.Fatalf("change %d core fields differ", i)
		}
		if len(g.PotentialConflicts) != len(c.PotentialConflicts) || len(g.RealConflicts) != len(c.RealConflicts) {
			t.Fatalf("change %d conflicts differ", i)
		}
		for j := range c.RealConflicts {
			if !g.RealConflicts[j] {
				t.Fatalf("change %d missing real conflict %d", i, j)
			}
		}
		// Features survive: same success-model vector.
		fa := predict.SuccessFeatures(c.Meta)
		fb := predict.SuccessFeatures(g.Meta)
		for k := range fa {
			if fa[k] != fb[k] {
				t.Fatalf("change %d feature %s differs: %v vs %v",
					i, predict.SuccessFeatureNames[k], fa[k], fb[k])
			}
		}
	}
	// Eventual outcomes identical.
	a, b := w.EventualOutcomes(), got.EventualOutcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("eventual outcome %d differs", i)
		}
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := Import(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Import(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Asymmetric conflicts rejected.
	bad := `{"version":1,"config":{},"changes":[
	  {"id":"c000000","submit_at_ns":0,"duration_ns":1,"succeeds":true,
	   "potential_conflicts":[1],"real_conflicts":[1],
	   "author":{},"stats":{},"revision":{},"paths":["f"]},
	  {"id":"c000001","submit_at_ns":1,"duration_ns":1,"succeeds":true,
	   "potential_conflicts":[0],"real_conflicts":[],
	   "author":{},"stats":{},"revision":{},"paths":["f"]}]}`
	if _, err := Import(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "asymmetric") {
		t.Fatalf("asymmetric conflict accepted: %v", err)
	}
	// Out-of-range conflict index rejected.
	bad2 := strings.Replace(bad, `"real_conflicts":[1]`, `"real_conflicts":[9]`, 1)
	bad2 = strings.Replace(bad2, `"potential_conflicts":[1]`, `"potential_conflicts":[9]`, 1)
	if _, err := Import(strings.NewReader(bad2)); err == nil {
		t.Fatal("out-of-range conflict accepted")
	}
}
