// Package workload generates the synthetic change streams that substitute
// for the paper's nine months of Uber production data (§8.1). Every knob the
// evaluation depends on is modeled:
//
//   - Arrival process: Poisson at a configurable changes/hour rate.
//   - Build durations: log-normal fit of the Fig. 9 CDF (median ≈ 27 min,
//     long tail to ~2 h), identical for the iOS and Android presets.
//   - Conflict structure: the monorepo is split into components; changes
//     touch 1–3 components; two changes sharing a component are *potentially
//     conflicting* (what the conflict analyzer reports), and a calibrated
//     fraction of those pairs *really* conflict — concentrated on pairs
//     touching the same files, so the conflict model has real signal —
//     reproducing Fig. 1's curve (a few percent at n=2 concurrent potential
//     conflicters rising to ≈35–40% at n=16).
//   - Individual success: drawn from a logistic model over realistic change
//     features (developer, revision, change size), so a trained
//     logistic-regression predictor genuinely reaches the paper's ~97%
//     accuracy on isolated build outcomes (§7.2); accuracy on *final*
//     results is lower because conflict-caused rejections depend on what
//     else is in flight, which no single-change feature can encode.
//
// Ground truth (which changes succeed, which pairs really conflict) is
// exposed for the Oracle baseline and for the simulator's build-outcome
// computation, mirroring how the paper replays recorded outcomes.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/predict"
	"mastergreen/internal/repo"
)

// Config parameterizes workload generation.
type Config struct {
	Seed int64
	// Rand, when non-nil, is the injected RNG the generator draws from.
	// When nil, a fresh rand.New(rand.NewSource(Seed)) is used, so
	// identical Seeds regenerate bit-identical workloads (pinned by the
	// golden-trace test).
	Rand        *rand.Rand
	Count       int     // number of changes
	RatePerHour float64 // Poisson arrival rate

	// Build duration log-normal (of minutes): median = exp(Mu).
	DurMedianMin float64 // median build duration in minutes (default 27)
	DurSigma     float64 // log-normal sigma (default 0.55)
	DurMinMin    float64 // truncate below (default 5)
	DurMaxMin    float64 // truncate above (default 120)

	// Conflict model.
	Components            int           // component count (default 60)
	ComponentsPerChange   int           // max components touched (default 3, zipf-ish)
	RealConflictFraction  float64       // base P(real | potential) before pair features (default 0.0015)
	SameTeamConflictBoost float64       // multiplier when authors share a team (default 2)
	ConflictWindow        time.Duration // changes further apart than this never conflict (default 20m): a developer only collides with roughly concurrent work

	// Success model: base success odds; features shift the logit.
	BaseSuccessLogit float64 // default +3.0 (≈88% marginal success rate)

	Developers int // developer pool size (default 60)
	Teams      int // team count (default 8)
}

func (c Config) withDefaults() Config {
	if c.Count <= 0 {
		c.Count = 1000
	}
	if c.RatePerHour <= 0 {
		c.RatePerHour = 300
	}
	if c.DurMedianMin <= 0 {
		c.DurMedianMin = 27
	}
	if c.DurSigma <= 0 {
		c.DurSigma = 0.55
	}
	if c.DurMinMin <= 0 {
		c.DurMinMin = 5
	}
	if c.DurMaxMin <= 0 {
		c.DurMaxMin = 120
	}
	if c.Components <= 0 {
		c.Components = 60
	}
	if c.ComponentsPerChange <= 0 {
		c.ComponentsPerChange = 3
	}
	if c.RealConflictFraction <= 0 {
		c.RealConflictFraction = 0.0015
	}
	if c.SameTeamConflictBoost <= 0 {
		c.SameTeamConflictBoost = 2
	}
	if c.ConflictWindow <= 0 {
		c.ConflictWindow = 20 * time.Minute
	}
	if c.BaseSuccessLogit == 0 {
		c.BaseSuccessLogit = 3.0
	}
	if c.Developers <= 0 {
		c.Developers = 60
	}
	if c.Teams <= 0 {
		c.Teams = 8
	}
	return c
}

// IOSConfig mirrors the paper's iOS monorepo: slightly conflict-heavier
// (deep build graph, §8.4) and the Fig. 9 duration CDF.
func IOSConfig(seed int64, count int, ratePerHour float64) Config {
	return Config{
		Seed: seed, Count: count, RatePerHour: ratePerHour,
		Components: 50, RealConflictFraction: 0.002,
	}
}

// AndroidConfig mirrors the Android monorepo: a wider graph with slightly
// fewer real conflicts.
func AndroidConfig(seed int64, count int, ratePerHour float64) Config {
	return Config{
		Seed: seed, Count: count, RatePerHour: ratePerHour,
		Components: 70, RealConflictFraction: 0.0012,
	}
}

// Change is one synthetic change with its ground truth.
type Change struct {
	Index      int
	ID         change.ID
	SubmitAt   time.Duration
	Duration   time.Duration // build duration for builds whose subject this is
	Components []int         // monorepo components touched
	Succeeds   bool          // ground truth: builds green in isolation

	// Meta carries the feature-bearing change object for the predictor.
	Meta *change.Change

	// PotentialConflicts: indices of other changes sharing a component
	// (symmetric). This is what the conflict analyzer would report.
	PotentialConflicts map[int]bool
	// RealConflicts ⊆ PotentialConflicts: pairs that fail when built
	// together even though each succeeds alone (symmetric).
	RealConflicts map[int]bool
}

// Workload is a generated change stream plus its ground truth.
type Workload struct {
	Cfg     Config
	Changes []*Change
}

// rng returns the injected RNG, or a fresh one seeded from Seed.
func (c Config) rng() *rand.Rand {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.New(rand.NewSource(c.Seed))
}

// Generate builds a deterministic workload from the config.
func Generate(cfg Config) *Workload {
	cfg = cfg.withDefaults()
	rng := cfg.rng()

	devs := make([]change.Developer, cfg.Developers)
	for i := range devs {
		devs[i] = change.Developer{
			Name:             fmt.Sprintf("dev%02d", i),
			Team:             fmt.Sprintf("team%d", i%cfg.Teams),
			Level:            1 + rng.Intn(8),
			EmploymentMonths: 1 + rng.Intn(96),
		}
	}
	// Teams cluster on components: team t's home components.
	teamComponents := make([][]int, cfg.Teams)
	for t := range teamComponents {
		k := 3 + rng.Intn(4)
		for j := 0; j < k; j++ {
			teamComponents[t] = append(teamComponents[t], rng.Intn(cfg.Components))
		}
	}

	w := &Workload{Cfg: cfg}
	now := time.Duration(0)
	meanGap := time.Duration(float64(time.Hour) / cfg.RatePerHour)
	for i := 0; i < cfg.Count; i++ {
		// Poisson arrivals: exponential inter-arrival gaps.
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		now += gap
		dev := devs[rng.Intn(len(devs))]
		teamIdx := 0
		fmt.Sscanf(dev.Team, "team%d", &teamIdx)

		// Components: mostly from the team's home set, zipf-ish count,
		// capped by how many distinct components exist.
		nc := 1
		if rng.Float64() < 0.35 && cfg.ComponentsPerChange >= 2 {
			nc = 2
		}
		if rng.Float64() < 0.10 && cfg.ComponentsPerChange >= 3 {
			nc = 3
		}
		if nc > cfg.Components {
			nc = cfg.Components
		}
		comps := map[int]bool{}
		home := teamComponents[teamIdx]
		for len(comps) < nc {
			if rng.Float64() < 0.8 && len(home) > 0 {
				comps[home[rng.Intn(len(home))]] = true
			} else {
				comps[rng.Intn(cfg.Components)] = true
			}
		}
		var compList []int
		for c := range comps {
			compList = append(compList, c)
		}
		sort.Ints(compList) // map iteration order must not leak into the trace

		// Duration: truncated log-normal.
		mu := math.Log(cfg.DurMedianMin)
		minutes := math.Exp(mu + cfg.DurSigma*rng.NormFloat64())
		if minutes < cfg.DurMinMin {
			minutes = cfg.DurMinMin
		}
		if minutes > cfg.DurMaxMin {
			minutes = cfg.DurMaxMin
		}

		c := &Change{
			Index:              i,
			ID:                 change.ID(fmt.Sprintf("c%06d", i)),
			SubmitAt:           now,
			Duration:           time.Duration(minutes * float64(time.Minute)),
			Components:         compList,
			PotentialConflicts: map[int]bool{},
			RealConflicts:      map[int]bool{},
		}
		c.Meta = synthesizeMeta(rng, c, dev, i)
		// Ground-truth success from the same features the model will see, so
		// the model is genuinely learnable (§7.2).
		z := successLogit(cfg, c.Meta)
		c.Succeeds = rng.Float64() < predict.Sigmoid(z)
		w.Changes = append(w.Changes, c)
	}

	// Pairwise conflicts: only pairs sharing a component.
	byComponent := make([][]int, cfg.Components)
	for _, c := range w.Changes {
		for _, comp := range c.Components {
			byComponent[comp] = append(byComponent[comp], c.Index)
		}
	}
	for _, members := range byComponent {
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				i, j := members[a], members[b]
				ci, cj := w.Changes[i], w.Changes[j]
				if cj.SubmitAt-ci.SubmitAt > cfg.ConflictWindow {
					break // members are in submission order; rest are further away
				}
				if ci.PotentialConflicts[j] {
					continue // already linked via another shared component
				}
				ci.PotentialConflicts[j] = true
				cj.PotentialConflicts[i] = true
				if rng.Float64() < pairConflictProb(cfg, ci.Meta, cj.Meta) {
					ci.RealConflicts[j] = true
					cj.RealConflicts[i] = true
				}
			}
		}
	}
	return w
}

// pairConflictProb is the generative model for real conflicts between a
// potentially-conflicting pair: the base rate shifted by the same pair
// features the conflict model trains on — file overlap (the dominant
// signal: touching the same file almost guarantees a merge/test conflict),
// directory overlap, and shared team (§7.2 observed developers on the same
// code paths conflict more often). Feature-driven generation is what makes
// predictConflict genuinely learnable.
func pairConflictProb(cfg Config, a, b *change.Change) float64 {
	f := predict.ConflictFeatures(a, b)
	sharedPaths, sameTeam := f[0], f[2]
	base := cfg.RealConflictFraction
	z := math.Log(base / (1 - base))
	if sharedPaths > 2 {
		sharedPaths = 2
	}
	// Conflicts concentrate heavily on pairs editing the same files — which
	// is what makes predictConflict genuinely informative, as the paper
	// observed of its developer/code-path features.
	z += 5.0 * sharedPaths
	z += math.Log(cfg.SameTeamConflictBoost) * sameTeam
	return predict.Sigmoid(z)
}

// successSharpness scales the success logit so outcomes are strongly (but
// not perfectly) determined by features; calibrated jointly with the base
// logit to give an ≈88% success rate and ≈97% Bayes-optimal accuracy,
// matching §7.2's reported model accuracy.
const successSharpness = 4.0

// successLogit is the generative model for individual change success; its
// coefficients deliberately mirror the paper's reported feature correlations
// (initial test failures and revision resubmits hurt; test plans and passing
// pre-submit checks help).
func successLogit(cfg Config, m *change.Change) float64 {
	z := cfg.BaseSuccessLogit
	z -= 2.2 * float64(m.Stats.InitialTestsFailed)
	z += 0.05 * float64(m.Stats.InitialTestsPassed)
	z -= 0.9 * float64(m.Revision.SubmitCount)
	if m.Revision.TestPlan {
		z += 1.0
	}
	if m.Revision.RevertPlan {
		z += 0.5
	}
	z += 0.1 * float64(m.Author.Level)
	z -= 0.03 * float64(m.Stats.FilesChanged)
	z -= 0.002 * float64(m.Stats.LinesAdded)
	z -= 2.0 * float64(m.Stats.BinariesAdded)
	return successSharpness * z
}

// synthesizeMeta builds the feature-bearing change.Change. The patch touches
// one synthetic file per component so path-overlap conflict features work.
func synthesizeMeta(rng *rand.Rand, c *Change, dev change.Developer, i int) *change.Change {
	filesChanged := 1 + rng.Intn(12)
	lines := 5 + rng.Intn(400)
	initialFailed := 0
	if rng.Float64() < 0.12 {
		initialFailed = 1 + rng.Intn(3)
	}
	rev := &change.Revision{
		ID:          change.RevisionID(fmt.Sprintf("r%06d", i)),
		Author:      dev,
		SubmitCount: rng.Intn(4),
		TestPlan:    rng.Float64() < 0.7,
		RevertPlan:  rng.Float64() < 0.5,
	}
	var fcs []repo.FileChange
	for _, comp := range c.Components {
		fcs = append(fcs, repo.FileChange{
			Path:       fmt.Sprintf("component%02d/file%d.go", comp, rng.Intn(12)),
			Op:         repo.OpCreate,
			NewContent: fmt.Sprintf("content %d", i),
		})
	}
	binsAdded := 0
	if rng.Float64() < 0.05 {
		binsAdded = 1
	}
	return &change.Change{
		ID:          c.ID,
		Revision:    rev,
		Author:      dev,
		Description: fmt.Sprintf("synthetic change %d", i),
		Patch:       repo.Patch{Changes: fcs},
		BuildSteps:  change.DefaultBuildSteps(),
		Stats: change.Stats{
			NumGitCommits:      1 + rng.Intn(5),
			FilesChanged:       filesChanged,
			LinesAdded:         lines,
			LinesRemoved:       rng.Intn(lines + 1),
			HunksChanged:       1 + rng.Intn(20),
			BinariesAdded:      binsAdded,
			InitialTestsPassed: 3 + rng.Intn(8),
			InitialTestsFailed: initialFailed,
			AffectedTargets:    len(c.Components) * (1 + rng.Intn(20)),
		},
	}
}

// EventualOutcomes computes, by induction over submission order, which
// changes eventually commit under serializability: a change commits iff it
// individually succeeds and has no real conflict with an earlier-submitted
// change that commits. This is scheduling-independent, which is what lets
// the Oracle baseline "perfectly predict the outcome of a change" (§8).
func (w *Workload) EventualOutcomes() []bool {
	out := make([]bool, len(w.Changes))
	for i, c := range w.Changes {
		if !c.Succeeds {
			continue
		}
		ok := true
		for j := range c.RealConflicts {
			if j < i && out[j] {
				ok = false
				break
			}
		}
		out[i] = ok
	}
	return out
}

// OraclePredictor returns a predict.Oracle backed by this workload's ground
// truth. PredictSuccess answers the question the paper's model is trained
// on — "will this change's build succeed against the mainline it lands on?"
// — which is the eventual outcome, not merely isolated success: a change
// that conflicts with an already-committed change fails its decisive build.
func (w *Workload) OraclePredictor() predict.Oracle {
	byID := make(map[change.ID]*Change, len(w.Changes))
	for _, c := range w.Changes {
		byID[c.ID] = c
	}
	eventual := w.EventualOutcomes()
	return predict.Oracle{
		Success: func(id change.ID) bool {
			c, ok := byID[id]
			return ok && eventual[c.Index]
		},
		Conflict: func(a, b change.ID) bool {
			ca, ok := byID[a]
			if !ok {
				return false
			}
			cb, ok := byID[b]
			if !ok {
				return false
			}
			return ca.RealConflicts[cb.Index]
		},
	}
}

// TrainingData extracts labeled examples for the success model. Labels are
// the changes' *final results* — committed or rejected — exactly what the
// paper trains on ("historical changes that went through SubmitQueue along
// with their final results", §7.2): a change that succeeds alone but
// conflicts with a committed change counts as a failure.
func (w *Workload) TrainingData() (X [][]float64, y []bool) {
	eventual := w.EventualOutcomes()
	for _, c := range w.Changes {
		X = append(X, predict.SuccessFeatures(c.Meta))
		y = append(y, eventual[c.Index])
	}
	return
}

// IsolatedTrainingData labels examples with isolated build success (would
// the change pass its build steps alone against a green mainline?). This is
// the fully feature-determined signal on which the model reaches the paper's
// headline ~97% accuracy.
func (w *Workload) IsolatedTrainingData() (X [][]float64, y []bool) {
	for _, c := range w.Changes {
		X = append(X, predict.SuccessFeatures(c.Meta))
		y = append(y, c.Succeeds)
	}
	return
}

// ConflictTrainingData extracts labeled pair examples for the conflict
// model: all potentially-conflicting pairs, labeled by real conflict. Only
// potential pairs are used — that is exactly the population the model is
// asked about at planning time (the conflict analyzer has already filtered
// independent pairs), so the model's calibration matches its deployment.
func (w *Workload) ConflictTrainingData(seed int64) (X [][]float64, y []bool) {
	_ = seed // retained for API stability; sampling is exhaustive
	for _, c := range w.Changes {
		var partners []int
		for j := range c.PotentialConflicts {
			if j > c.Index {
				partners = append(partners, j) // each pair once
			}
		}
		sort.Ints(partners) // row order feeds SGD batching; map order would make training nondeterministic
		for _, j := range partners {
			o := w.Changes[j]
			X = append(X, predict.ConflictFeatures(c.Meta, o.Meta))
			y = append(y, c.RealConflicts[j])
		}
	}
	return
}

// StalenessBreakageProb models Fig. 2: the probability that a change whose
// base is `staleness` old breaks the mainline, under a constant hazard of
// conflicting commits landing per hour. Calibrated so 1–10 h staleness gives
// 10–20% breakage, rising toward ~70% at 100 h, matching the paper's curve.
func StalenessBreakageProb(staleness time.Duration, hazardPerHour float64) float64 {
	if hazardPerHour <= 0 {
		hazardPerHour = 0.012
	}
	h := staleness.Hours()
	if h < 0 {
		h = 0
	}
	return 1 - math.Exp(-hazardPerHour*h)
}
