package workload

import (
	"math"
	"testing"
	"time"

	"mastergreen/internal/metrics"
	"mastergreen/internal/predict"
)

func gen(t *testing.T, cfg Config) *Workload {
	t.Helper()
	w := Generate(cfg)
	if len(w.Changes) != w.Cfg.Count {
		t.Fatalf("count = %d, want %d", len(w.Changes), w.Cfg.Count)
	}
	return w
}

func TestDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, Count: 200})
	b := Generate(Config{Seed: 7, Count: 200})
	for i := range a.Changes {
		ca, cb := a.Changes[i], b.Changes[i]
		if ca.SubmitAt != cb.SubmitAt || ca.Duration != cb.Duration || ca.Succeeds != cb.Succeeds {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	c := Generate(Config{Seed: 8, Count: 200})
	same := true
	for i := range a.Changes {
		if a.Changes[i].SubmitAt != c.Changes[i].SubmitAt {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestArrivalRate(t *testing.T) {
	w := gen(t, Config{Seed: 1, Count: 3000, RatePerHour: 300})
	last := w.Changes[len(w.Changes)-1].SubmitAt
	gotRate := float64(len(w.Changes)) / last.Hours()
	if gotRate < 250 || gotRate > 350 {
		t.Fatalf("empirical rate = %.1f/h, want ≈300", gotRate)
	}
	// Arrivals are monotone.
	for i := 1; i < len(w.Changes); i++ {
		if w.Changes[i].SubmitAt < w.Changes[i-1].SubmitAt {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestDurationDistributionMatchesFig9(t *testing.T) {
	w := gen(t, Config{Seed: 2, Count: 5000})
	var mins []float64
	for _, c := range w.Changes {
		m := c.Duration.Minutes()
		if m < 5 || m > 120 {
			t.Fatalf("duration %.1f outside [5,120]", m)
		}
		mins = append(mins, m)
	}
	s := metrics.Summarize(mins)
	if s.P50 < 20 || s.P50 > 35 {
		t.Fatalf("median duration = %.1f min, want ≈27", s.P50)
	}
	if s.P95 < 50 || s.P95 > 115 {
		t.Fatalf("p95 duration = %.1f min", s.P95)
	}
}

func TestSuccessRateRealistic(t *testing.T) {
	w := gen(t, Config{Seed: 3, Count: 5000})
	ok := 0
	for _, c := range w.Changes {
		if c.Succeeds {
			ok++
		}
	}
	rate := float64(ok) / float64(len(w.Changes))
	// Most changes pass pre-submit review; expect a high but not total rate.
	if rate < 0.70 || rate > 0.98 {
		t.Fatalf("success rate = %.3f", rate)
	}
}

func TestConflictsSymmetricAndSubset(t *testing.T) {
	w := gen(t, Config{Seed: 4, Count: 1000})
	for _, c := range w.Changes {
		for j := range c.PotentialConflicts {
			if !w.Changes[j].PotentialConflicts[c.Index] {
				t.Fatalf("potential conflict not symmetric: %d-%d", c.Index, j)
			}
		}
		for j := range c.RealConflicts {
			if !c.PotentialConflicts[j] {
				t.Fatalf("real conflict %d-%d not potential", c.Index, j)
			}
			if !w.Changes[j].RealConflicts[c.Index] {
				t.Fatalf("real conflict not symmetric: %d-%d", c.Index, j)
			}
		}
	}
}

func TestPotentialConflictsShareComponent(t *testing.T) {
	w := gen(t, Config{Seed: 5, Count: 500})
	for _, c := range w.Changes {
		compSet := map[int]bool{}
		for _, comp := range c.Components {
			compSet[comp] = true
		}
		for j := range c.PotentialConflicts {
			shared := false
			for _, comp := range w.Changes[j].Components {
				if compSet[comp] {
					shared = true
					break
				}
			}
			if !shared {
				t.Fatalf("potential conflict %d-%d without shared component", c.Index, j)
			}
		}
	}
}

// TestFig1Shape verifies the calibration: among n concurrent potentially
// conflicting changes, P(the nth really conflicts with one of the first
// n−1) grows from a few percent at n=2 to tens of percent at n=16.
func TestFig1Shape(t *testing.T) {
	w := gen(t, IOSConfig(6, 12000, 600))
	probAt := func(n int) float64 {
		trials, hits := 0, 0
		for _, c := range w.Changes {
			var pot []int
			for j := range c.PotentialConflicts {
				if j < c.Index {
					pot = append(pot, j)
				}
			}
			if len(pot) < n-1 {
				continue
			}
			trials++
			conflicted := false
			for _, j := range pot[:n-1] {
				if c.RealConflicts[j] {
					conflicted = true
					break
				}
			}
			if conflicted {
				hits++
			}
		}
		if trials == 0 {
			t.Fatalf("no trials for n=%d", n)
		}
		return float64(hits) / float64(trials)
	}
	p2 := probAt(2)
	p16 := probAt(16)
	if p2 < 0.02 || p2 > 0.15 {
		t.Fatalf("P(real conflict | n=2) = %.3f, want ≈0.05", p2)
	}
	if p16 < 0.25 || p16 > 0.75 {
		t.Fatalf("P(real conflict | n=16) = %.3f, want ≈0.4", p16)
	}
	if p16 <= p2 {
		t.Fatal("conflict probability must grow with concurrency")
	}
}

func TestEventualOutcomes(t *testing.T) {
	w := gen(t, Config{Seed: 7, Count: 2000})
	out := w.EventualOutcomes()
	for i, c := range w.Changes {
		if !c.Succeeds && out[i] {
			t.Fatalf("failing change %d marked committing", i)
		}
		if out[i] {
			for j := range c.RealConflicts {
				if j < i && out[j] {
					t.Fatalf("both sides of real conflict %d-%d commit", i, j)
				}
			}
		}
	}
	// Commit rate should be close to (but below) the success rate.
	commits := 0
	succ := 0
	for i, c := range w.Changes {
		if out[i] {
			commits++
		}
		if c.Succeeds {
			succ++
		}
	}
	if commits >= succ {
		t.Fatalf("commits %d >= successes %d (conflicts must reject some)", commits, succ)
	}
	if float64(commits) < 0.55*float64(succ) {
		t.Fatalf("commits %d implausibly low vs %d successes", commits, succ)
	}
}

func TestOraclePredictor(t *testing.T) {
	w := gen(t, Config{Seed: 8, Count: 300})
	o := w.OraclePredictor()
	eventual := w.EventualOutcomes()
	for _, c := range w.Changes[:50] {
		want := 0.0
		if eventual[c.Index] {
			want = 1.0
		}
		if got := o.PredictSuccess(c.Meta); got != want {
			t.Fatalf("oracle success %s = %v, want %v", c.ID, got, want)
		}
		for j := range c.RealConflicts {
			if got := o.PredictConflict(c.Meta, w.Changes[j].Meta); got != 1 {
				t.Fatalf("oracle conflict = %v", got)
			}
		}
	}
}

// TestModelReachesPaperAccuracy trains the success model on a 70/30 split:
// on isolated build outcomes it must reach the paper's headline ~97%; on
// final (eventual) outcomes the achievable accuracy is lower because
// conflict rejections depend on concurrent traffic.
func TestModelReachesPaperAccuracy(t *testing.T) {
	w := gen(t, Config{Seed: 9, Count: 6000})

	X, y := w.IsolatedTrainingData()
	trX, trY, vaX, vaY := predict.Split(X, y, 0.7, 42)
	m, err := predict.Train(predict.SuccessFeatureNames, trX, trY, predict.TrainConfig{Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	if acc := predict.Evaluate(m, vaX, vaY).Accuracy; acc < 0.95 {
		t.Fatalf("isolated-outcome accuracy = %.3f, want >= 0.95 (paper: ~97%%)", acc)
	}

	X, y = w.TrainingData()
	trX, trY, vaX, vaY = predict.Split(X, y, 0.7, 42)
	m, err = predict.Train(predict.SuccessFeatureNames, trX, trY, predict.TrainConfig{Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	if acc := predict.Evaluate(m, vaX, vaY).Accuracy; acc < 0.85 {
		t.Fatalf("final-outcome accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestConflictTrainingData(t *testing.T) {
	w := gen(t, Config{Seed: 10, Count: 2000})
	X, y := w.ConflictTrainingData(1)
	if len(X) != len(y) || len(X) == 0 {
		t.Fatalf("sizes = %d/%d", len(X), len(y))
	}
	pos := 0
	for _, v := range y {
		if v {
			pos++
		}
	}
	if pos == 0 || pos == len(y) {
		t.Fatalf("degenerate labels: %d/%d positive", pos, len(y))
	}
}

func TestStalenessBreakageProb(t *testing.T) {
	p0 := StalenessBreakageProb(0, 0)
	if p0 != 0 {
		t.Fatalf("p(0) = %v", p0)
	}
	p10 := StalenessBreakageProb(10*time.Hour, 0)
	if p10 < 0.08 || p10 > 0.25 {
		t.Fatalf("p(10h) = %.3f, want 10–20%%", p10)
	}
	p100 := StalenessBreakageProb(100*time.Hour, 0)
	if p100 < 0.5 || p100 > 0.9 {
		t.Fatalf("p(100h) = %.3f", p100)
	}
	// Monotone in staleness.
	prev := -1.0
	for h := 1; h <= 200; h *= 2 {
		p := StalenessBreakageProb(time.Duration(h)*time.Hour, 0)
		if p <= prev {
			t.Fatal("not monotone")
		}
		prev = p
	}
	// Negative staleness clamps.
	if StalenessBreakageProb(-time.Hour, 0) != 0 {
		t.Fatal("negative staleness should clamp to 0")
	}
}

func TestPlatformPresetsDiffer(t *testing.T) {
	ios := Generate(IOSConfig(11, 3000, 300))
	android := Generate(AndroidConfig(11, 3000, 300))
	rate := func(w *Workload) float64 {
		pairs, real := 0, 0
		for _, c := range w.Changes {
			for j := range c.PotentialConflicts {
				if j > c.Index {
					pairs++
					if c.RealConflicts[j] {
						real++
					}
				}
			}
		}
		return float64(real) / math.Max(1, float64(pairs))
	}
	if rate(ios) <= rate(android) {
		t.Fatalf("iOS should be conflict-heavier: %.4f vs %.4f", rate(ios), rate(android))
	}
}
